//! The persistent cross-run corpus store.
//!
//! A campaign's hard-won knowledge — the representative inputs that cover
//! each function's branches and the infeasibility verdicts its search
//! settled on — used to die with the process. The corpus store persists
//! both, keyed on a **function fingerprint**
//! ([`Program::fingerprint`](coverme_runtime::Program::fingerprint)): the
//! hash of the lowered instruction tape for FPIR programs, the
//! name/arity/site-count shape hash for native ports. A repeat campaign
//! over an unchanged function looks its entry up, replays the prior
//! winners as a [`WarmStart`](crate::WarmStart) before its first round,
//! and — when they still saturate the function — exits after just the
//! replay evaluations instead of re-running the whole starting-point
//! schedule. A changed function hashes to a different fingerprint and
//! simply misses: evals are spent only on what changed.
//!
//! # On-disk layout
//!
//! ```text
//! <root>/
//!   meta.json              coverme-corpus-meta/1: the generation counter
//!   fn-<16 hex>.json       coverme-corpus-entry/1, one per fingerprint
//! ```
//!
//! Entries are written atomically (temp file + rename, like every other
//! artifact in this repository) and parsed through the shared envelope
//! module ([`crate::report::schema`]), so a truncated or hostile file is
//! a positioned error, never a panic. Inputs are stored as **hex bit
//! patterns** of their `f64`s — JSON numbers cannot round-trip every
//! `f64` exactly, and a warm start replayed off-by-one-ULP would miss the
//! exact-equality branches it exists to re-cover. `generation` is a
//! store-wide monotonic counter (not wall-clock time, which the
//! deterministic test suites cannot depend on); `gc` keeps the
//! most-recently-recorded entries by generation.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use coverme_runtime::BranchId;

use crate::driver::WarmStart;
use crate::report::schema::{self, JsonValue};
use crate::TestReport;

/// One persisted function entry: everything a repeat campaign needs to
/// warm-start the same function.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// The function fingerprint this entry is keyed on.
    pub fingerprint: u64,
    /// Function name at record time (informational; the fingerprint is
    /// the key).
    pub name: String,
    /// Store-wide monotonic recording stamp; higher = more recent.
    pub generation: u64,
    /// Representative inputs of the recorded run, in acceptance order.
    pub inputs: Vec<Vec<f64>>,
    /// Infeasibility verdicts the recorded run settled on.
    pub infeasible: Vec<BranchId>,
    /// Branches the recorded run covered (informational).
    pub covered_branches: usize,
    /// Total branches of the function (informational).
    pub total_branches: usize,
    /// Evaluations the recorded run spent (informational; what the warm
    /// start is expected to save).
    pub evaluations: usize,
    /// [Search key](crate::CoverMeConfig::search_key) of the recorded
    /// run's configuration — the hash of every result-determining knob.
    /// `0` on legacy entries (never matches a live key in practice).
    pub search_key: u64,
    /// Whether the recorded run ran its *entire* starting-point schedule
    /// (every `n_start` round executed, or inherited from a prior
    /// same-key entry whose coverage a warm-started run reproduced). Only
    /// exhausted entries grant the schedule credit
    /// ([`WarmStart::prior_coverage`]): a run cut short by a budget,
    /// deadline, cancellation or degradation proves nothing about the
    /// rounds it never ran.
    pub exhausted: bool,
}

impl CorpusEntry {
    /// Builds the entry a finished run would persist. `config` is the
    /// run's configuration: it stamps the entry's [search
    /// key](crate::CoverMeConfig::search_key), and its `n_start` decides
    /// `exhausted` — the schedule ran entirely when the report carries a
    /// round record per starting point.
    pub fn from_report(
        fingerprint: u64,
        config: &crate::CoverMeConfig,
        report: &TestReport,
    ) -> CorpusEntry {
        CorpusEntry {
            fingerprint,
            name: report.program.clone(),
            generation: 0,
            inputs: report.inputs.clone(),
            infeasible: report.infeasible.clone(),
            covered_branches: report.coverage.covered_count(),
            total_branches: report.coverage.total_branches(),
            evaluations: report.evaluations,
            search_key: config.search_key(),
            exhausted: report.rounds.len() >= config.n_start,
        }
    }

    /// The warm-start payload a new search replays from this entry. The
    /// schedule credit is *not* granted here — only
    /// [`CorpusStore::warm_start_for`] does, after validating the caller's
    /// search key and program shape against the entry.
    pub fn warm_start(&self) -> WarmStart {
        WarmStart {
            inputs: self.inputs.clone(),
            infeasible: self.infeasible.clone(),
            prior_coverage: None,
        }
    }

    fn to_json(&self) -> String {
        let inputs = JsonValue::Array(
            self.inputs
                .iter()
                .map(|input| {
                    JsonValue::Array(
                        input
                            .iter()
                            .map(|v| JsonValue::String(format!("{:016x}", v.to_bits())))
                            .collect(),
                    )
                })
                .collect(),
        );
        let infeasible = JsonValue::Array(
            self.infeasible
                .iter()
                .map(|b| JsonValue::Number(b.index() as f64))
                .collect(),
        );
        let doc = JsonValue::Object(vec![
            (
                "schema".to_string(),
                JsonValue::String(schema::CORPUS_ENTRY.label()),
            ),
            (
                "fingerprint".to_string(),
                JsonValue::String(format!("{:016x}", self.fingerprint)),
            ),
            ("name".to_string(), JsonValue::String(self.name.clone())),
            (
                "generation".to_string(),
                JsonValue::Number(self.generation as f64),
            ),
            (
                "covered_branches".to_string(),
                JsonValue::Number(self.covered_branches as f64),
            ),
            (
                "total_branches".to_string(),
                JsonValue::Number(self.total_branches as f64),
            ),
            (
                "evaluations".to_string(),
                JsonValue::Number(self.evaluations as f64),
            ),
            (
                "search_key".to_string(),
                JsonValue::String(format!("{:016x}", self.search_key)),
            ),
            ("exhausted".to_string(), JsonValue::Bool(self.exhausted)),
            ("inputs".to_string(), inputs),
            ("infeasible".to_string(), infeasible),
        ]);
        let mut out = doc.to_compact();
        out.push('\n');
        out
    }

    fn parse(text: &str) -> Result<CorpusEntry, String> {
        let envelope = schema::open_envelope(text).map_err(|e| e.to_string())?;
        let body = envelope.expect(schema::CORPUS_ENTRY)?;
        let fingerprint = body
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or("missing or malformed `fingerprint`")?;
        let name = body
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("missing `name`")?
            .to_string();
        let generation = body
            .get("generation")
            .and_then(JsonValue::as_usize)
            .ok_or("missing `generation`")? as u64;
        let covered_branches = body
            .get("covered_branches")
            .and_then(JsonValue::as_usize)
            .ok_or("missing `covered_branches`")?;
        let total_branches = body
            .get("total_branches")
            .and_then(JsonValue::as_usize)
            .ok_or("missing `total_branches`")?;
        let evaluations = body
            .get("evaluations")
            .and_then(JsonValue::as_usize)
            .ok_or("missing `evaluations`")?;
        // Absent on pre-credit entries: they warm-start fine, they just
        // never grant the schedule credit (key 0 matches no live config).
        let search_key = body
            .get("search_key")
            .and_then(JsonValue::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .unwrap_or(0);
        let exhausted = body
            .get("exhausted")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false);
        let mut inputs = Vec::new();
        for row in body
            .get("inputs")
            .and_then(JsonValue::as_array)
            .ok_or("missing `inputs`")?
        {
            let mut input = Vec::new();
            for cell in row.as_array().ok_or("malformed input row")? {
                let bits = cell
                    .as_str()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or("malformed input bit pattern")?;
                input.push(f64::from_bits(bits));
            }
            inputs.push(input);
        }
        let mut infeasible = Vec::new();
        for cell in body
            .get("infeasible")
            .and_then(JsonValue::as_array)
            .ok_or("missing `infeasible`")?
        {
            let index = cell.as_usize().ok_or("malformed infeasible branch")?;
            infeasible.push(BranchId::from_index(index));
        }
        Ok(CorpusEntry {
            fingerprint,
            name,
            generation,
            inputs,
            infeasible,
            covered_branches,
            total_branches,
            evaluations,
            search_key,
            exhausted,
        })
    }
}

/// Aggregate numbers over a store, for `coverme corpus stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CorpusStats {
    /// Number of function entries.
    pub entries: usize,
    /// Total representative inputs across entries.
    pub inputs: usize,
    /// Total infeasibility verdicts across entries.
    pub infeasible: usize,
    /// Total evaluations the recorded runs spent (the upper bound on what
    /// warm starts can save per repeat).
    pub evaluations: usize,
}

/// The persistent corpus store: a directory of fingerprint-keyed entries.
///
/// The store is `Sync` (interior mutex over the generation counter), so a
/// campaign's worker threads and the serve daemon's concurrent jobs can
/// share one handle behind an `Arc`. Writes are atomic per entry;
/// cross-process coordination is last-writer-wins per fingerprint, which
/// is sound because any entry for a fingerprint is a valid (refutable)
/// warm start.
#[derive(Debug)]
pub struct CorpusStore {
    root: PathBuf,
    next_generation: Mutex<u64>,
}

impl CorpusStore {
    /// Opens (creating if needed) the store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<CorpusStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let meta_path = root.join("meta.json");
        let next_generation = match std::fs::read_to_string(&meta_path) {
            Ok(text) => schema::open_envelope(&text)
                .ok()
                .and_then(|env| env.expect(schema::CORPUS_META).ok().cloned())
                .and_then(|body| {
                    body.get("next_generation")
                        .and_then(JsonValue::as_usize)
                        .map(|g| g as u64)
                })
                .unwrap_or(1),
            Err(_) => 1,
        };
        Ok(CorpusStore {
            root,
            next_generation: Mutex::new(next_generation),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, fingerprint: u64) -> PathBuf {
        self.root.join(format!("fn-{fingerprint:016x}.json"))
    }

    /// Looks up the entry for `fingerprint`, if one is persisted and
    /// parses cleanly (a corrupt file reads as a miss, not an error — the
    /// warm start is an optimization, never a correctness dependency).
    pub fn lookup(&self, fingerprint: u64) -> Option<CorpusEntry> {
        let text = std::fs::read_to_string(self.entry_path(fingerprint)).ok()?;
        let entry = CorpusEntry::parse(&text).ok()?;
        (entry.fingerprint == fingerprint).then_some(entry)
    }

    /// The warm-start payload for `fingerprint`, validated against the
    /// program shape: inputs must match `arity`, verdicts must lie within
    /// `num_sites`. Returns `None` on a miss or an empty payload.
    ///
    /// `search_key` is the new run's
    /// [`CoverMeConfig::search_key`](crate::CoverMeConfig::search_key).
    /// When it equals the recorded entry's key, the entry is
    /// [`exhausted`](CorpusEntry::exhausted), and nothing had to be
    /// filtered (a filtered input or verdict means the shape drifted —
    /// e.g. a fingerprint collision — and the determinism argument is
    /// void), the payload carries the schedule credit
    /// ([`WarmStart::prior_coverage`]): a replay reproducing the recorded
    /// coverage finishes without re-running the schedule.
    pub fn warm_start_for(
        &self,
        fingerprint: u64,
        arity: usize,
        num_sites: usize,
        search_key: u64,
    ) -> Option<WarmStart> {
        let entry = self.lookup(fingerprint)?;
        let kept_inputs: Vec<Vec<f64>> = entry
            .inputs
            .iter()
            .filter(|input| input.len() == arity)
            .cloned()
            .collect();
        let kept_infeasible: Vec<BranchId> = entry
            .infeasible
            .iter()
            .copied()
            .filter(|branch| branch.index() < num_sites * 2)
            .collect();
        let credit = entry.exhausted
            && entry.search_key == search_key
            && search_key != 0
            && entry.total_branches == num_sites * 2
            && kept_inputs.len() == entry.inputs.len()
            && kept_infeasible.len() == entry.infeasible.len();
        let warm = WarmStart {
            inputs: kept_inputs,
            infeasible: kept_infeasible,
            prior_coverage: credit.then_some(entry.covered_branches),
        };
        (!warm.is_empty()).then_some(warm)
    }

    /// Persists `entry` (assigning it the next generation stamp) under its
    /// fingerprint, atomically replacing any previous entry.
    pub fn record(&self, mut entry: CorpusEntry) -> io::Result<()> {
        {
            let mut counter = self.next_generation.lock().expect("corpus lock poisoned");
            entry.generation = *counter;
            *counter += 1;
            let meta = JsonValue::Object(vec![
                (
                    "schema".to_string(),
                    JsonValue::String(schema::CORPUS_META.label()),
                ),
                (
                    "next_generation".to_string(),
                    JsonValue::Number(*counter as f64),
                ),
            ]);
            let mut meta_text = meta.to_compact();
            meta_text.push('\n');
            write_atomic(&self.root.join("meta.json"), &meta_text)?;
        }
        write_atomic(&self.entry_path(entry.fingerprint), &entry.to_json())
    }

    /// Convenience: records what a finished run would persist. Reports
    /// with no inputs *and* no verdicts are skipped (nothing to warm-start
    /// from); returns whether an entry was written.
    ///
    /// A warm-started run that took the schedule credit ran few (often
    /// zero) rounds, so its own report never looks exhausted — but the
    /// exhaustion verdict it rode on still stands. When the previous entry
    /// for the fingerprint has the same search key, is exhausted, and the
    /// new report reproduced its coverage, the verdict is carried forward,
    /// keeping third and later repeats warm too.
    pub fn record_report(
        &self,
        fingerprint: u64,
        config: &crate::CoverMeConfig,
        report: &TestReport,
    ) -> io::Result<bool> {
        if report.inputs.is_empty() && report.infeasible.is_empty() {
            return Ok(false);
        }
        let mut entry = CorpusEntry::from_report(fingerprint, config, report);
        if !entry.exhausted {
            if let Some(previous) = self.lookup(fingerprint) {
                entry.exhausted = previous.exhausted
                    && previous.search_key == entry.search_key
                    && previous.covered_branches == entry.covered_branches;
            }
        }
        self.record(entry)?;
        Ok(true)
    }

    /// Every parseable entry in the store, sorted by name then
    /// fingerprint (stable listing order for `coverme corpus ls`).
    pub fn entries(&self) -> Vec<CorpusEntry> {
        let mut found: BTreeMap<(String, u64), CorpusEntry> = BTreeMap::new();
        let Ok(dir) = std::fs::read_dir(&self.root) else {
            return Vec::new();
        };
        for dir_entry in dir.filter_map(Result::ok) {
            let path = dir_entry.path();
            let Some(file_name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !file_name.starts_with("fn-") || !file_name.ends_with(".json") {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            if let Ok(entry) = CorpusEntry::parse(&text) {
                found.insert((entry.name.clone(), entry.fingerprint), entry);
            }
        }
        found.into_values().collect()
    }

    /// Aggregate numbers over the store.
    pub fn stats(&self) -> CorpusStats {
        let entries = self.entries();
        CorpusStats {
            entries: entries.len(),
            inputs: entries.iter().map(|e| e.inputs.len()).sum(),
            infeasible: entries.iter().map(|e| e.infeasible.len()).sum(),
            evaluations: entries.iter().map(|e| e.evaluations).sum(),
        }
    }

    /// Garbage collection: keeps the `keep` most recently recorded
    /// entries (by generation stamp, ties broken by fingerprint) and
    /// removes the rest. Returns how many entries were removed.
    pub fn gc(&self, keep: usize) -> io::Result<usize> {
        let mut entries = self.entries();
        entries.sort_by_key(|e| (std::cmp::Reverse(e.generation), e.fingerprint));
        let mut removed = 0usize;
        for entry in entries.iter().skip(keep) {
            std::fs::remove_file(self.entry_path(entry.fingerprint))?;
            removed += 1;
        }
        Ok(removed)
    }
}

/// Atomic file replace: write to a sibling temp file, then rename over
/// the target (same pattern as the CLI's `write_json_atomic`, but
/// returning errors instead of exiting — this is library code).
fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{native_fingerprint, BranchSet, CoverageMap};
    use std::time::Duration;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("coverme-corpus-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn report_with(inputs: Vec<Vec<f64>>, infeasible: Vec<BranchId>) -> TestReport {
        let mut coverage = CoverageMap::new(2);
        let mut covered = BranchSet::new();
        covered.insert(BranchId::true_of(0));
        coverage.record_set(&covered);
        TestReport {
            program: "toy".to_string(),
            inputs,
            coverage,
            infeasible,
            rounds: Vec::new(),
            evaluations: 321,
            cache_hits: 0,
            timeouts: 0,
            traps: 0,
            epochs: Vec::new(),
            barriers_skipped: 0,
            warm_replayed: 0,
            backend: "interp",
            simd_isa: "portable",
            lane_width: 8,
            wall_time: Duration::from_millis(1),
        }
    }

    #[test]
    fn schedule_credit_requires_matching_key_and_exhaustion() {
        let dir = temp_dir("credit");
        let store = CorpusStore::open(&dir).unwrap();
        let fp = 11;
        // A run that executed its whole (tiny) schedule: one round record
        // per starting point.
        let config = crate::CoverMeConfig::new().with_n_start(1).with_seed(42);
        let mut report = report_with(vec![vec![3.0]], Vec::new());
        report.rounds.push(crate::RoundRecord {
            round: 0,
            start: vec![3.0],
            minimum: vec![3.0],
            value: 0.0,
            evaluations: 7,
            saturated_before: 0,
            outcome: crate::RoundOutcome::NewInput,
        });
        store.record_report(fp, &config, &report).unwrap();
        let entry = store.lookup(fp).unwrap();
        assert!(entry.exhausted);
        assert_eq!(entry.search_key, config.search_key());

        // Same key: the credit rides along.
        let warm = store
            .warm_start_for(fp, 1, 2, config.search_key())
            .expect("hit");
        assert_eq!(warm.prior_coverage, Some(entry.covered_branches));
        // Different key (another seed): inputs replay, no credit.
        let other = crate::CoverMeConfig::new().with_n_start(1).with_seed(43);
        let cold = store
            .warm_start_for(fp, 1, 2, other.search_key())
            .expect("hit");
        assert_eq!(cold.prior_coverage, None);
        assert_eq!(cold.inputs, warm.inputs);
        // Wrong shape (site count drifted): no credit either.
        let drifted = store
            .warm_start_for(fp, 1, 3, config.search_key())
            .expect("hit");
        assert_eq!(drifted.prior_coverage, None);

        // A warm repeat that took the credit ran zero rounds; re-recording
        // it carries the exhaustion verdict forward when the coverage held.
        let repeat = report_with(vec![vec![3.0]], Vec::new());
        store.record_report(fp, &config, &repeat).unwrap();
        let chained = store.lookup(fp).unwrap();
        assert!(chained.exhausted, "verdict carries across warm repeats");
        let again = store
            .warm_start_for(fp, 1, 2, config.search_key())
            .expect("hit");
        assert_eq!(again.prior_coverage, Some(entry.covered_branches));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_round_trip_exotic_floats_exactly() {
        let dir = temp_dir("roundtrip");
        let store = CorpusStore::open(&dir).unwrap();
        let weird = vec![
            vec![f64::NAN, -0.0],
            vec![f64::INFINITY, f64::MIN_POSITIVE / 2.0],
            vec![1.0 + f64::EPSILON, -1e308],
        ];
        let fp = native_fingerprint("toy", 2, 2);
        let report = report_with(weird.clone(), vec![BranchId::false_of(1)]);
        assert!(store
            .record_report(fp, &crate::CoverMeConfig::new(), &report)
            .unwrap());
        let entry = store.lookup(fp).expect("entry persisted");
        // Bit-exact round trip, including NaN and signed zero.
        for (stored, original) in entry.inputs.iter().zip(&weird) {
            for (s, o) in stored.iter().zip(original) {
                assert_eq!(s.to_bits(), o.to_bits());
            }
        }
        assert_eq!(entry.infeasible, vec![BranchId::false_of(1)]);
        assert_eq!(entry.evaluations, 321);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_filters_stale_shapes() {
        let dir = temp_dir("filter");
        let store = CorpusStore::open(&dir).unwrap();
        let fp = 7;
        let report = report_with(vec![vec![1.0], vec![1.0, 2.0]], vec![BranchId::false_of(9)]);
        store
            .record_report(fp, &crate::CoverMeConfig::new(), &report)
            .unwrap();
        // Asked with arity 1 / 2 sites: the arity-2 input and the
        // out-of-range verdict are dropped.
        let warm = store.warm_start_for(fp, 1, 2, 0).expect("non-empty");
        assert_eq!(warm.inputs, vec![vec![1.0]]);
        assert!(warm.infeasible.is_empty());
        assert!(
            store.warm_start_for(99, 1, 2, 0).is_none(),
            "miss on unknown"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generations_climb_and_gc_keeps_the_newest() {
        let dir = temp_dir("gc");
        let store = CorpusStore::open(&dir).unwrap();
        for fp in 0..5u64 {
            store
                .record_report(
                    fp,
                    &crate::CoverMeConfig::new(),
                    &report_with(vec![vec![fp as f64]], Vec::new()),
                )
                .unwrap();
        }
        assert_eq!(store.stats().entries, 5);
        // Reopen: the generation counter persisted.
        let reopened = CorpusStore::open(&dir).unwrap();
        reopened
            .record_report(
                100,
                &crate::CoverMeConfig::new(),
                &report_with(vec![vec![9.0]], Vec::new()),
            )
            .unwrap();
        let latest = reopened.lookup(100).unwrap();
        let earlier = reopened.lookup(0).unwrap();
        assert!(latest.generation > earlier.generation);
        // GC to 2: the two newest survive.
        let removed = reopened.gc(2).unwrap();
        assert_eq!(removed, 4);
        let left = reopened.entries();
        assert_eq!(left.len(), 2);
        assert!(left.iter().any(|e| e.fingerprint == 100));
        assert!(left.iter().any(|e| e.fingerprint == 4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let dir = temp_dir("corrupt");
        let store = CorpusStore::open(&dir).unwrap();
        std::fs::write(store.entry_path(3), "{ not json").unwrap();
        std::fs::write(
            store.entry_path(4),
            "{\"schema\": \"coverme-corpus-entry/99\"}\n",
        )
        .unwrap();
        assert!(store.lookup(3).is_none());
        assert!(store.lookup(4).is_none());
        assert_eq!(store.stats().entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
