//! Reports produced by a CoverMe run.

pub mod schema;

use std::time::Duration;

use coverme_runtime::{BranchId, CoverageMap, CoverageSummary};

/// What happened in one minimization round (one iteration of the outer loop
/// of Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundOutcome {
    /// The minimum reached zero: the point was added to the generated test
    /// inputs and saturated at least one new branch.
    NewInput,
    /// The minimum reached zero but added no new coverage (can happen when
    /// the saturation snapshot lags behind coverage within a round).
    RedundantInput,
    /// The minimum stayed positive; the infeasible-branch heuristic marked
    /// the untaken branch of the last conditional as infeasible.
    DeemedInfeasible(BranchId),
    /// The minimum stayed positive under the *generalized* blame policy
    /// ([`crate::InfeasiblePolicy::Generalized`]): every still-uncovered
    /// untaken branch along the failed path was marked infeasible, not just
    /// the last conditional's. Carries the last conditional's untaken
    /// branch (the classic verdict) and the total number of branches
    /// blamed this round.
    DeemedInfeasiblePath(BranchId, usize),
    /// The minimum stayed positive and the heuristic was disabled or had no
    /// branch to blame (empty trace).
    NoProgress,
    /// The round's final evaluation did not run to completion (the program
    /// timed out or trapped, see [`coverme_runtime::RunOutcome`]): its
    /// coverage and trace are garbage from a truncated execution, so the
    /// driver recorded nothing — no input, no saturation update, and no
    /// infeasible blame.
    Aborted,
}

/// Per-round record kept for diagnostics and for the scenario tables
/// (Table 1 of the paper is regenerated from these records).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Index of the round (0-based).
    pub round: usize,
    /// The starting point handed to the backend.
    pub start: Vec<f64>,
    /// The minimum point the backend returned.
    pub minimum: Vec<f64>,
    /// `FOO_R` at the minimum point.
    pub value: f64,
    /// Number of objective evaluations spent in this round.
    pub evaluations: usize,
    /// Number of branches saturated *before* this round ran.
    pub saturated_before: usize,
    /// What the driver did with the result.
    pub outcome: RoundOutcome,
}

/// Per-epoch work telemetry of an epoch-resumable search (see
/// [`crate::driver::SearchState`]). One entry per `run_rounds` slice a
/// shard executed; a run-to-exhaustion search has exactly one. Campaign
/// merges aggregate entries of the same epoch index across shards, so a
/// synced run shows how the work (and the evaluation spend) distributed
/// over its sync epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochTelemetry {
    /// Epoch index within the shard's schedule (0-based).
    pub epoch: usize,
    /// Rounds executed in this epoch.
    pub rounds: usize,
    /// Representing-function evaluations spent in this epoch (including
    /// cache-served calls).
    pub evaluations: usize,
    /// Sibling-shard saturation deltas absorbed at the barrier *before*
    /// this epoch ran (0 for the first epoch and for unsynced runs).
    pub deltas_absorbed: usize,
}

/// The complete result of a CoverMe run on one program.
#[derive(Debug, Clone)]
pub struct TestReport {
    /// Name of the tested program.
    pub program: String,
    /// The generated test inputs `X` (minimum points with `FOO_R = 0`).
    pub inputs: Vec<Vec<f64>>,
    /// Branch coverage achieved by executing the program on `X`.
    pub coverage: CoverageMap,
    /// Branches the infeasible-branch heuristic gave up on.
    pub infeasible: Vec<BranchId>,
    /// Per-round records, in order.
    pub rounds: Vec<RoundRecord>,
    /// Total objective (representing function) evaluations — objective
    /// calls, including the ones the engine's memoization cache answered
    /// without executing the program.
    pub evaluations: usize,
    /// Evaluations the objective engine served from its bit-exact
    /// memoization cache (see `coverme::objective`): answered calls that
    /// cost no program execution.
    pub cache_hits: usize,
    /// Evaluations whose execution ran out of fuel before completing
    /// (classified [`coverme_runtime::RunOutcome::Timeout`]); each returned
    /// the abort sentinel and fed no coverage or saturation update.
    pub timeouts: usize,
    /// Evaluations whose execution trapped — recursion too deep, a missing
    /// call target — before completing (classified
    /// [`coverme_runtime::RunOutcome::Trap`]).
    pub traps: usize,
    /// Per-epoch work telemetry, aggregated across shards by epoch index
    /// (entries are in epoch order). Unsynced runs have a single epoch.
    pub epochs: Vec<EpochTelemetry>,
    /// Sync barriers this search crossed without exchanging deltas because
    /// the adaptive gate ([`crate::CoverMeConfig::adaptive_sync`]) saw no
    /// tracker `version()` movement since the previous barrier. Summed
    /// across shards by the campaign merge; 0 for unsynced or non-adaptive
    /// runs.
    pub barriers_skipped: usize,
    /// Corpus inputs replayed before the search's first round when the
    /// run warm-started from a [`crate::corpus::CorpusStore`] entry (the
    /// replayed evaluations are included in
    /// [`evaluations`](Self::evaluations)). 0 for a cold run — and the
    /// corpus keys then stay out of the JSON artifacts entirely, keeping
    /// corpus-less reports byte-identical to earlier releases.
    pub warm_replayed: usize,
    /// Name of the execution backend the objective engine ran
    /// (see [`coverme_runtime::ExecBackend::name`]) — `"interp"` or
    /// `"tape"`; bit-exact either way, recorded for telemetry.
    pub backend: &'static str,
    /// Label of the SIMD ISA the backend's lane kernels dispatched to
    /// (see [`coverme_runtime::SimdIsa::label`]) — `"portable"`, `"sse2"`
    /// or `"avx2"`; bit-exact either way, recorded for telemetry.
    pub simd_isa: &'static str,
    /// The backend's SIMD lane width (batch evaluations are packed into
    /// groups of this size). An ISA property: 16 under AVX2, 8 otherwise.
    pub lane_width: usize,
    /// Wall-clock time of the run.
    pub wall_time: Duration,
}

impl TestReport {
    /// Branch coverage in percent, the headline number of Tables 2 and 3.
    pub fn branch_coverage_percent(&self) -> f64 {
        self.coverage.branch_coverage_percent()
    }

    /// Whether every branch was covered.
    pub fn is_fully_covered(&self) -> bool {
        self.coverage.is_fully_covered()
    }

    /// Number of rounds that produced a new test input.
    pub fn productive_rounds(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.outcome == RoundOutcome::NewInput)
            .count()
    }

    /// Evaluations that did not run to completion (timeouts plus traps).
    pub fn aborted_evaluations(&self) -> usize {
        self.timeouts + self.traps
    }

    /// Total branches the infeasible-branch heuristic blamed over the run:
    /// one per classic [`RoundOutcome::DeemedInfeasible`] round, plus the
    /// full per-round blame count of generalized
    /// [`RoundOutcome::DeemedInfeasiblePath`] rounds. Derived from the
    /// round records, so shard merges (which concatenate rounds) aggregate
    /// it for free. Counts verdicts as issued; some may later be refuted
    /// by real coverage and leave [`TestReport::infeasible`].
    pub fn infeasible_blamed(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| match r.outcome {
                RoundOutcome::DeemedInfeasible(_) => 1,
                RoundOutcome::DeemedInfeasiblePath(_, blamed) => blamed,
                _ => 0,
            })
            .sum()
    }

    /// Summary row for table harnesses.
    pub fn summary(&self) -> CoverageSummary {
        self.coverage.summary(&self.program)
    }

    /// Objective-evaluation throughput of the run in evaluations per
    /// second (0 when the run was too fast to measure).
    pub fn evals_per_second(&self) -> f64 {
        let seconds = self.wall_time.as_secs_f64();
        if seconds > 0.0 {
            self.evaluations as f64 / seconds
        } else {
            0.0
        }
    }

    /// Throughput of evaluations that ran to completion: aborted
    /// (timeout/trap) evaluations are excluded from the numerator, so a
    /// spin-heavy FPIR corpus does not report misleading evals/sec. This is
    /// what the campaign table prints.
    pub fn effective_evals_per_second(&self) -> f64 {
        let seconds = self.wall_time.as_secs_f64();
        if seconds > 0.0 {
            self.evaluations.saturating_sub(self.aborted_evaluations()) as f64 / seconds
        } else {
            0.0
        }
    }

    /// The run's headline classification for artifacts: `done` when every
    /// evaluation ran to completion, otherwise the dominant abort kind
    /// (`timeout` or `trap` — the value the CI smoke pins for the
    /// non-terminating corpus program).
    pub fn outcome_label(&self) -> &'static str {
        if self.aborted_evaluations() == 0 {
            "done"
        } else if self.timeouts >= self.traps {
            "timeout"
        } else {
            "trap"
        }
    }

    /// The standalone-run JSON artifact (schema
    /// [`schema::RUN_REPORT`] = `coverme-run-report/3`) — what
    /// `coverme run --json` writes and `coverme serve` streams for
    /// single-program jobs. `entry` is the entry-function name, `path`
    /// the source file the run tested. A warm-started run additionally
    /// carries `corpus_warm_start` / `warm_replayed` members; a cold run's
    /// document is byte-identical to earlier releases.
    pub fn to_run_json(&self, entry: &str, path: &str) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema\": \"{}\",\n",
            schema::RUN_REPORT.label()
        ));
        out.push_str(&format!("  \"file\": \"{}\",\n", path.replace('\\', "/")));
        out.push_str(&format!("  \"entry\": \"{entry}\",\n"));
        out.push_str(&format!("  \"outcome\": \"{}\",\n", self.outcome_label()));
        out.push_str(&format!("  \"backend\": \"{}\",\n", self.backend));
        out.push_str(&format!("  \"simd_isa\": \"{}\",\n", self.simd_isa));
        out.push_str(&format!("  \"lane_width\": {},\n", self.lane_width));
        out.push_str(&format!(
            "  \"branches\": {},\n",
            self.coverage.total_branches()
        ));
        out.push_str(&format!(
            "  \"covered_branches\": {},\n",
            self.coverage.covered_count()
        ));
        out.push_str(&format!(
            "  \"branch_coverage_percent\": {},\n",
            self.branch_coverage_percent()
        ));
        out.push_str(&format!("  \"inputs\": {},\n", self.inputs.len()));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds.len()));
        out.push_str(&format!("  \"evals\": {},\n", self.evaluations));
        out.push_str(&format!("  \"cache_hits\": {},\n", self.cache_hits));
        out.push_str(&format!("  \"timeouts\": {},\n", self.timeouts));
        out.push_str(&format!("  \"traps\": {},\n", self.traps));
        if self.warm_replayed > 0 {
            out.push_str("  \"corpus_warm_start\": true,\n");
            out.push_str(&format!("  \"warm_replayed\": {},\n", self.warm_replayed));
        }
        out.push_str(&format!(
            "  \"wall_time_s\": {}\n",
            self.wall_time.as_secs_f64()
        ));
        out.push_str("}\n");
        out
    }
}

impl std::fmt::Display for TestReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {:.1}% branch coverage ({} / {} branches) with {} inputs in {:.2?} \
             ({} evals, {} cache hits)",
            self.program,
            self.branch_coverage_percent(),
            self.coverage.covered_count(),
            self.coverage.total_branches(),
            self.inputs.len(),
            self.wall_time,
            self.evaluations,
            self.cache_hits,
        )?;
        if self.aborted_evaluations() > 0 {
            writeln!(
                f,
                "  aborted evaluations: {} timeouts, {} traps",
                self.timeouts, self.traps
            )?;
        }
        if !self.infeasible.is_empty() {
            let labels: Vec<String> = self.infeasible.iter().map(|b| b.to_string()).collect();
            writeln!(f, "  deemed infeasible: {}", labels.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{BranchSet, ExecCtx};

    fn dummy_report() -> TestReport {
        let mut coverage = CoverageMap::new(2);
        let mut covered = BranchSet::new();
        covered.insert(BranchId::true_of(0));
        covered.insert(BranchId::false_of(0));
        covered.insert(BranchId::true_of(1));
        coverage.record_set(&covered);
        TestReport {
            program: "toy".to_string(),
            inputs: vec![vec![1.0], vec![-3.0]],
            coverage,
            infeasible: vec![BranchId::false_of(1)],
            rounds: vec![
                RoundRecord {
                    round: 0,
                    start: vec![0.0],
                    minimum: vec![1.0],
                    value: 0.0,
                    evaluations: 10,
                    saturated_before: 0,
                    outcome: RoundOutcome::NewInput,
                },
                RoundRecord {
                    round: 1,
                    start: vec![5.0],
                    minimum: vec![-3.0],
                    value: 0.5,
                    evaluations: 12,
                    saturated_before: 2,
                    outcome: RoundOutcome::DeemedInfeasible(BranchId::false_of(1)),
                },
            ],
            evaluations: 22,
            cache_hits: 3,
            timeouts: 1,
            traps: 0,
            epochs: vec![EpochTelemetry {
                epoch: 0,
                rounds: 2,
                evaluations: 22,
                deltas_absorbed: 0,
            }],
            barriers_skipped: 0,
            warm_replayed: 0,
            backend: "interp",
            simd_isa: "portable",
            lane_width: 8,
            wall_time: Duration::from_millis(5),
        }
    }

    #[test]
    fn percentages_and_counters() {
        let report = dummy_report();
        assert_eq!(report.branch_coverage_percent(), 75.0);
        assert!(!report.is_fully_covered());
        assert_eq!(report.productive_rounds(), 1);
        assert_eq!(report.summary().covered_branches, 3);
    }

    #[test]
    fn display_mentions_infeasible_branches() {
        let text = dummy_report().to_string();
        assert!(text.contains("75.0%"));
        assert!(text.contains("deemed infeasible"));
        assert!(text.contains("1F"));
        assert!(text.contains("22 evals"));
        assert!(text.contains("3 cache hits"));
        assert!(text.contains("1 timeouts, 0 traps"));
    }

    #[test]
    fn evals_per_second_uses_wall_time() {
        let report = dummy_report();
        // 22 evaluations in 5 ms.
        assert!((report.evals_per_second() - 4400.0).abs() < 1e-9);
        let mut instant = dummy_report();
        instant.wall_time = Duration::ZERO;
        assert_eq!(instant.evals_per_second(), 0.0);
    }

    #[test]
    fn effective_throughput_excludes_aborted_evaluations() {
        // 22 evaluations, 1 of them a timeout: 21 completed in 5 ms.
        let report = dummy_report();
        assert!((report.effective_evals_per_second() - 4200.0).abs() < 1e-9);
        // A run that aborted everything reports zero useful throughput.
        let mut spun = dummy_report();
        spun.timeouts = 30;
        assert_eq!(spun.effective_evals_per_second(), 0.0);
    }

    #[test]
    fn infeasible_blame_counts_generalized_rounds_in_full() {
        let mut report = dummy_report();
        assert_eq!(report.infeasible_blamed(), 1);
        report.rounds.push(RoundRecord {
            round: 2,
            start: vec![9.0],
            minimum: vec![9.0],
            value: 0.25,
            evaluations: 8,
            saturated_before: 2,
            outcome: RoundOutcome::DeemedInfeasiblePath(BranchId::true_of(1), 3),
        });
        assert_eq!(report.infeasible_blamed(), 4);
    }

    #[test]
    fn coverage_map_usable_after_run() {
        // The report exposes the live coverage map so callers can keep
        // recording executions (e.g. to merge with another tester's inputs).
        let mut report = dummy_report();
        let mut ctx = ExecCtx::observe();
        ctx.branch(1, coverme_runtime::Cmp::Le, 5.0, 1.0);
        report.coverage.record(&ctx);
        assert!(report.is_fully_covered());
    }
}
