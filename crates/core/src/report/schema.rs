//! The versioned JSON envelope shared by every CoverMe artifact.
//!
//! Every JSON surface this repository emits — the standalone run report,
//! the campaign report, corpus-store entries, and the `coverme serve`
//! wire protocol — carries a `"schema"` field of the form
//! `"coverme-<kind>-report/<version>"` (or `"coverme-<kind>/<version>"`
//! for non-report artifacts). This module is the single home of:
//!
//! * the [`SchemaId`] registry naming every artifact kind and its
//!   current version;
//! * a positioned, depth-limited JSON parser ([`parse`]) and an
//!   order-preserving value model ([`JsonValue`]) — the repository
//!   vendors no serde, so the wire protocol and the corpus store read
//!   documents through this parser;
//! * compact and pretty writers whose output [`parse`] round-trips
//!   exactly (pinned by property tests in `tests/schema_properties.rs`);
//! * the emission helpers (`push_number` / `push_bool` / `push_escaped`)
//!   the hand-built report writers share, so every artifact escapes and
//!   formats numbers identically.
//!
//! The envelope contract: [`open_envelope`] parses a document, requires a
//! top-level object with a string `"schema"` field, and splits the label
//! into kind and version so readers can dispatch and reject mismatches
//! with a useful message instead of a missing-key panic.

use std::fmt;

/// Identity of one JSON artifact kind: its schema-label prefix and
/// current version. `label()` renders the exact string emitted in the
/// document's `"schema"` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemaId {
    /// Label prefix, e.g. `"coverme-run-report"`.
    pub kind: &'static str,
    /// Current version, bumped on any breaking shape change.
    pub version: u32,
}

impl SchemaId {
    /// The exact `"schema"` field value, e.g. `"coverme-run-report/2"`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.kind, self.version)
    }

    /// Whether `label` names this kind at exactly this version.
    pub fn matches(&self, label: &str) -> bool {
        split_label(label) == Some((self.kind.to_string(), self.version))
    }
}

/// The standalone `coverme run` report (see
/// [`TestReport::to_run_json`](crate::TestReport::to_run_json)).
pub const RUN_REPORT: SchemaId = SchemaId {
    kind: "coverme-run-report",
    version: 3,
};

/// The campaign report
/// ([`CampaignReport::write_json`](crate::CampaignReport)).
pub const CAMPAIGN_REPORT: SchemaId = SchemaId {
    kind: "coverme-campaign-report",
    version: 6,
};

/// One persisted function entry of the corpus store
/// ([`crate::corpus::CorpusStore`]).
pub const CORPUS_ENTRY: SchemaId = SchemaId {
    kind: "coverme-corpus-entry",
    version: 1,
};

/// The corpus store's metadata/index document.
pub const CORPUS_META: SchemaId = SchemaId {
    kind: "coverme-corpus-meta",
    version: 1,
};

/// The `coverme serve` JSON-lines wire protocol (requests and events).
pub const SERVE_PROTOCOL: SchemaId = SchemaId {
    kind: "coverme-serve",
    version: 1,
};

/// Splits a schema label `"kind/version"` into its parts.
fn split_label(label: &str) -> Option<(String, u32)> {
    let (kind, version) = label.rsplit_once('/')?;
    if kind.is_empty() {
        return None;
    }
    let version: u32 = version.parse().ok()?;
    Some((kind.to_string(), version))
}

/// A parsed JSON document. Object member order is preserved (members are
/// a `Vec`, not a map), so a parse → write round trip reproduces the
/// original document byte for byte modulo whitespace.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64` — integers up to 2^53 round-trip
    /// exactly, which covers every counter this repository emits; values
    /// needing full 64-bit exactness (corpus input bit patterns,
    /// fingerprints) are transported as hex strings instead.
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, members in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up an object member by key (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON (the wire format).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }
}

/// A positioned JSON parse error. `line` and `column` are 1-based and
/// point at the offending byte, mirroring the FPIR front end's
/// positioned-diagnostics contract (`frontend_hardening.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the offending byte.
    pub line: u32,
    /// 1-based column of the offending byte.
    pub column: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth beyond which the parser rejects a document rather than
/// recurse further — a hostile `[[[[…` frame must produce a positioned
/// error, never a stack overflow.
pub const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
}

/// Parses a JSON document. The full input must be consumed (trailing
/// non-whitespace is an error); nesting is limited to [`MAX_DEPTH`].
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        line: 1,
        column: 1,
    };
    parser.skip_whitespace();
    let value = parser.value(0)?;
    parser.skip_whitespace();
    if parser.pos < parser.bytes.len() {
        return Err(parser.error("trailing data after JSON document"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            line: self.line,
            column: self.column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.pos += 1;
        if byte == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(byte)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(found) if found == byte => {
                self.bump();
                Ok(())
            }
            Some(found) => Err(self.error(format!(
                "expected `{}`, found `{}`",
                byte as char,
                printable(found)
            ))),
            None => Err(self.error(format!("expected `{}`, found end of input", byte as char))),
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            None => Err(self.error("expected a value, found end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(self.error(format!("expected a value, found `{}`", printable(other))))
            }
        }
    }

    fn keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        for &expected in word.as_bytes() {
            match self.peek() {
                Some(found) if found == expected => {
                    self.bump();
                }
                _ => return Err(self.error(format!("expected `{word}`"))),
            }
        }
        Ok(value)
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {
                    self.bump();
                    return Ok(JsonValue::Object(members));
                }
                Some(other) => {
                    return Err(self.error(format!(
                        "expected `,` or `}}` in object, found `{}`",
                        printable(other)
                    )))
                }
                None => return Err(self.error("unterminated object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {
                    self.bump();
                    return Ok(JsonValue::Array(items));
                }
                Some(other) => {
                    return Err(self.error(format!(
                        "expected `,` or `]` in array, found `{}`",
                        printable(other)
                    )))
                }
                None => return Err(self.error("unterminated array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    None => return Err(self.error("unterminated escape sequence")),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by `\uXXXX` with a low surrogate.
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            if self.peek() == Some(b'\\') {
                                self.bump();
                                if self.bump() != Some(b'u') {
                                    return Err(self.error("expected low surrogate escape"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                return Err(self.error("unpaired high surrogate"));
                            }
                        } else if (0xDC00..0xE000).contains(&code) {
                            return Err(self.error("unpaired low surrogate"));
                        } else {
                            char::from_u32(code)
                        };
                        match ch {
                            Some(ch) => out.push(ch),
                            None => return Err(self.error("invalid unicode escape")),
                        }
                    }
                    Some(other) => {
                        return Err(self.error(format!("invalid escape `\\{}`", printable(other))))
                    }
                },
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(byte) => {
                    // Re-assemble UTF-8 multibyte sequences: the input came
                    // from a &str, so continuation bytes are well-formed.
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(byte);
                        for _ in 1..width {
                            self.bump();
                        }
                        let slice = &self.bytes[start..self.pos];
                        out.push_str(std::str::from_utf8(slice).expect("input is valid UTF-8"));
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.error("invalid unicode escape")),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if self.peek() == Some(b'.') {
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        match text.parse::<f64>() {
            Ok(value) if value.is_finite() => Ok(JsonValue::Number(value)),
            _ => Err(self.error(format!("invalid number `{text}`"))),
        }
    }
}

fn utf8_width(byte: u8) -> usize {
    if byte >= 0xF0 {
        4
    } else if byte >= 0xE0 {
        3
    } else {
        2
    }
}

fn printable(byte: u8) -> String {
    if byte.is_ascii_graphic() || byte == b' ' {
        (byte as char).to_string()
    } else {
        format!("\\x{byte:02x}")
    }
}

/// Renders `value` as compact single-line JSON. [`parse`] round-trips the
/// output exactly.
pub fn write_compact(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Number(n) => out.push_str(&format_number(*n)),
        JsonValue::String(s) => write_escaped(s, out),
        JsonValue::Array(items) => {
            out.push('[');
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(members) => {
            out.push('{');
            for (index, (key, item)) in members.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

/// Renders a number the way every report writer does: non-finite values
/// collapse to `0` (JSON has no NaN/∞), finite ones print via Rust's
/// shortest round-trip `to_string`.
pub fn format_number(value: f64) -> String {
    if value.is_finite() {
        value.to_string()
    } else {
        "0".to_string()
    }
}

/// Appends `text` as a quoted JSON string with the repository's standard
/// escaping: `"` `\` and the C0 control characters (named escapes for
/// `\n` `\r` `\t`, `\u00XX` otherwise).
pub fn write_escaped(text: &str, out: &mut String) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `  "key": value,\n`-style lines for the pretty report writers.
/// `indent` is the literal indentation string.
pub fn push_number(out: &mut String, indent: &str, key: &str, value: f64, comma: bool) {
    out.push_str(indent);
    out.push('"');
    out.push_str(key);
    out.push_str("\": ");
    out.push_str(&format_number(value));
    if comma {
        out.push(',');
    }
    out.push('\n');
}

/// Appends a pretty-printed boolean member line.
pub fn push_bool(out: &mut String, indent: &str, key: &str, value: bool, comma: bool) {
    out.push_str(indent);
    out.push('"');
    out.push_str(key);
    out.push_str("\": ");
    out.push_str(if value { "true" } else { "false" });
    if comma {
        out.push(',');
    }
    out.push('\n');
}

/// Appends a pretty-printed string member line (value escaped).
pub fn push_escaped(out: &mut String, indent: &str, key: &str, value: &str, comma: bool) {
    out.push_str(indent);
    out.push('"');
    out.push_str(key);
    out.push_str("\": ");
    write_escaped(value, out);
    if comma {
        out.push(',');
    }
    out.push('\n');
}

/// An opened envelope: the schema label split into kind + version, plus
/// the parsed document body.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The full label, e.g. `"coverme-campaign-report/5"`.
    pub schema: String,
    /// The label's kind prefix.
    pub kind: String,
    /// The label's version suffix.
    pub version: u32,
    /// The whole parsed document (including the `"schema"` member).
    pub body: JsonValue,
}

impl Envelope {
    /// Whether this envelope is exactly `id` (kind and version).
    pub fn is(&self, id: SchemaId) -> bool {
        self.kind == id.kind && self.version == id.version
    }

    /// Requires the envelope to be exactly `id`, with a useful message
    /// otherwise (wrong kind vs. wrong version are distinguished).
    pub fn expect(&self, id: SchemaId) -> Result<&JsonValue, String> {
        if self.kind != id.kind {
            return Err(format!(
                "expected a `{}` document, found `{}`",
                id.kind, self.schema
            ));
        }
        if self.version != id.version {
            return Err(format!(
                "unsupported `{}` version {} (this build speaks {})",
                self.kind, self.version, id.version
            ));
        }
        Ok(&self.body)
    }
}

/// Parses `text` and opens its envelope: the document must be an object
/// with a string `"schema"` member of the form `"kind/version"`.
pub fn open_envelope(text: &str) -> Result<Envelope, JsonError> {
    let body = parse(text)?;
    let schema = match body.get("schema").and_then(JsonValue::as_str) {
        Some(label) => label.to_string(),
        None => {
            return Err(JsonError {
                line: 1,
                column: 1,
                message: "document has no string `schema` member".to_string(),
            })
        }
    };
    match split_label(&schema) {
        Some((kind, version)) => Ok(Envelope {
            schema,
            kind,
            version,
            body,
        }),
        None => Err(JsonError {
            line: 1,
            column: 1,
            message: format!("malformed schema label `{schema}` (expected `kind/version`)"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_basic_shapes() {
        let doc = parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": null}, "d": "x\ny"}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(doc.get("d").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("{\n  \"a\": 1,\n  oops\n}").unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.column, 3);
        assert!(err.message.contains("expected"));

        let err = parse("").unwrap_err();
        assert_eq!((err.line, err.column), (1, 1));
    }

    #[test]
    fn hostile_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(10_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"));
    }

    #[test]
    fn compact_writer_round_trips() {
        let doc = parse(r#"{"s":"a\"b\\c\nd","n":[0,1.5,-3],"b":true,"z":null,"o":{}}"#).unwrap();
        let compact = doc.to_compact();
        assert_eq!(parse(&compact).unwrap(), doc);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let doc = parse(r#""😀""#).unwrap();
        assert_eq!(doc.as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn envelope_dispatch() {
        let env = open_envelope(r#"{"schema": "coverme-run-report/3", "evals": 7}"#).unwrap();
        assert!(env.is(RUN_REPORT));
        assert!(env.expect(RUN_REPORT).is_ok());
        assert!(env
            .expect(CAMPAIGN_REPORT)
            .unwrap_err()
            .contains("expected"));
        let old = open_envelope(r#"{"schema": "coverme-run-report/1"}"#).unwrap();
        assert!(old.expect(RUN_REPORT).unwrap_err().contains("version 1"));
        assert!(open_envelope(r#"{"evals": 7}"#).is_err());
        assert!(open_envelope(r#"{"schema": "nope"}"#).is_err());
    }

    #[test]
    fn labels_match_the_emitted_schemas() {
        assert_eq!(RUN_REPORT.label(), "coverme-run-report/3");
        assert_eq!(CAMPAIGN_REPORT.label(), "coverme-campaign-report/6");
        assert!(RUN_REPORT.matches("coverme-run-report/3"));
        assert!(!RUN_REPORT.matches("coverme-run-report/2"));
    }

    #[test]
    fn number_formatting_matches_the_report_writers() {
        assert_eq!(format_number(0.0), "0");
        assert_eq!(format_number(2.5), "2.5");
        assert_eq!(format_number(f64::NAN), "0");
        assert_eq!(format_number(f64::INFINITY), "0");
    }
}
