//! The objective engine: batched, cache-aware evaluation of representing
//! functions.
//!
//! CoverMe's inner loop is millions of `FOO_R(x)` evaluations. Historically
//! every one of them built a fresh [`ExecCtx`] — cloning the saturation
//! snapshot, allocating a covered set and a trace — even though the
//! minimizer only consumes the scalar value. [`ObjectiveEngine`] is the
//! evaluation pipeline restructured around three ideas:
//!
//! * **an allocation-free scalar fast path** — one long-lived
//!   representing-mode context, [`reset`](ExecCtx::reset) between
//!   executions, with trace *and* coverage recording disabled (neither
//!   affects `r`, which `pen` computes from the saturation snapshot alone).
//!   A round boundary swaps the snapshot in place
//!   ([`ExecCtx::retarget`], one clone per round) instead of per call;
//! * **a batch entry point** — the engine speaks the
//!   [`Objective`] protocol of `coverme-optim`, so minimizers submit whole
//!   candidate sets (a Nelder–Mead simplex, a compass probe star, a shrink
//!   step) through [`Objective::eval_batch`] in one call. Values are
//!   bit-for-bit those of sequential scalar evaluation, in the same order,
//!   at any batch size — the batch API is a throughput seam, never a
//!   semantic one — and it is where a SIMD or parallel backend slots in
//!   later;
//! * **bit-exact memoization** — a direct-mapped memo table keyed on the
//!   input's [`f64::to_bits`] patterns. Programs under test are
//!   deterministic functions of their input bits (a [`Program`] contract),
//!   so a hit returns exactly the value an execution would; searches
//!   therefore produce identical results with the cache on or off, just
//!   faster when the minimizer revisits points (Powell's line searches
//!   re-evaluate the incumbent at `t = 0` every sweep, the polish step
//!   re-probes rounded candidates). The table is small on purpose — one
//!   probe, collision overwrites, L2-resident (see
//!   [`DEFAULT_CACHE_SLOTS`]) — and is invalidated by a single epoch bump
//!   whenever the snapshot actually changes (`FOO_R` is a different
//!   function then), while rounds that left saturation untouched inherit
//!   every memoized value.
//!
//! The engine also counts its work: [`EngineTelemetry`] reports objective
//! calls, real program executions, and cache hits, which the driver
//! surfaces per function in [`TestReport`](crate::TestReport) and
//! [`CampaignReport`](crate::CampaignReport) (evals, cache hits,
//! evals/sec).
//!
//! The slow path — [`eval_full`](ObjectiveEngine::eval_full), which the
//! driver needs when a minimum reaches zero (Algorithm 1 line 11: record
//! coverage, update saturation, or blame the last conditional) — still
//! materializes everything. That is the 0-hit path: the scalar fast path
//! never loses coverage because every accepted zero is re-executed through
//! `eval_full` before the driver consumes it.

use coverme_optim::Objective;
use coverme_runtime::{
    BackendMode, BranchSet, ExecBackend, ExecCtx, InterpBackend, LaneEval, Program, RunOutcome,
    SimdIsa,
};

use crate::representing::Evaluation;

/// The objective value substituted for an aborted execution (fuel
/// exhaustion or a runtime trap, see [`RunOutcome`]). An aborted run's
/// accumulator is a truncated garbage distance; `+∞` is deterministic,
/// never mistaken for a zero, and steers every minimizer away from the
/// region. Aborted evaluations are also never memoized — a cache entry
/// must represent a real `FOO_R(x)` value.
pub const ABORTED_VALUE: f64 = f64::INFINITY;

/// Widest input arity the memoization cache supports. Inputs are keyed as a
/// fixed-size array of bit patterns so a lookup never allocates; programs
/// with more inputs (none in the Fdlibm suite, whose widest function takes
/// 2) simply run uncached.
pub const MAX_CACHED_ARITY: usize = 4;

/// Default number of slots of the direct-mapped memo table (a power of
/// two). Slots are 48 bytes, so the default keeps the whole table under
/// 25 KiB — resident in L1/L2, which is what makes a probe cost
/// nanoseconds instead of a trip to DRAM. The hit population is temporally
/// local (the incumbent a line search re-probes at `t = 0`, polish
/// candidates, simplex vertices), so a small table captures almost all of
/// the hits a growing map would; an unbounded map was measured *slower*
/// than no cache at all once it outgrew the cache hierarchy.
pub const DEFAULT_CACHE_SLOTS: usize = 1 << 9;

/// Fewest conditional sites for [`CacheMode::Auto`] to turn memoization
/// on. A hit only pays when it saves more execution time than the probe
/// and insert traffic cost; measured on the Fdlibm suite (best-of-7 driver
/// runs), the crossover sits between `ieee754_fmod` (22 sites — a wash)
/// and `ieee754_pow` (30 sites — a clear win), while everything cheaper
/// loses a few percent. Programs at least this branch-dense cache by
/// default; leaner ones run the bare fast path.
pub const AUTO_CACHE_MIN_SITES: usize = 24;

/// Memoization policy of an [`ObjectiveEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Let the engine decide from the program's shape: memoize when the
    /// program has at least [`AUTO_CACHE_MIN_SITES`] conditional sites
    /// (execution is then expensive enough for hits to pay for probes).
    #[default]
    Auto,
    /// Always memoize (arity permitting). Used by the property tests that
    /// pin cache-invisibility and by workloads known to revisit points.
    On,
    /// Never memoize.
    Off,
}

/// Work counters of an [`ObjectiveEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineTelemetry {
    /// Objective calls answered (scalar, batched and full), including the
    /// ones served from the cache.
    pub calls: u64,
    /// Real program executions performed (`calls - cache_hits`).
    pub evals: u64,
    /// Calls answered from the memoization cache without executing.
    pub cache_hits: u64,
    /// Executions aborted by step-fuel exhaustion
    /// ([`RunOutcome::Timeout`]); their values were substituted with
    /// [`ABORTED_VALUE`] and not memoized.
    pub timeouts: u64,
    /// Executions aborted by a runtime fault ([`RunOutcome::Trap`]);
    /// substituted and unmemoized like timeouts.
    pub traps: u64,
}

impl EngineTelemetry {
    /// Cache hit rate in `[0, 1]` (0 when nothing was asked yet).
    pub fn hit_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.calls as f64
        }
    }

    /// Total aborted executions (timeouts + traps).
    pub fn aborts(&self) -> u64 {
        self.timeouts + self.traps
    }

    /// Records one execution's outcome in the abort counters.
    fn classify(&mut self, outcome: RunOutcome) {
        match outcome {
            RunOutcome::Done => {}
            RunOutcome::Timeout => self.timeouts += 1,
            RunOutcome::Trap => self.traps += 1,
        }
    }
}

type CacheKey = [u64; MAX_CACHED_ARITY];

/// FNV-1a over the raw `u64` words of a cache key, with a final avalanche
/// so the low bits (the slot index) depend on every input word. Input bit
/// patterns are already high-entropy; a short multiplicative hash keeps the
/// per-evaluation cost in the nanoseconds without adding a dependency.
fn hash_key(key: &CacheKey) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &word in key {
        h = (h ^ word).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

/// One slot of the direct-mapped memo table. `epoch` ties the entry to the
/// saturation snapshot it was computed against: a slot is live only while
/// its epoch equals the engine's, so invalidating the whole table on a
/// snapshot change is a single counter increment, not a scan.
#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    key: CacheKey,
    value: f64,
    /// Engine epoch the entry belongs to; 0 marks a never-written slot
    /// (the engine's epoch starts at 1).
    epoch: u64,
}

const EMPTY_SLOT: CacheSlot = CacheSlot {
    key: [0; MAX_CACHED_ARITY],
    value: 0.0,
    epoch: 0,
};

/// Direct-mapped, epoch-invalidated memo table. Collisions overwrite (the
/// newest value wins), which bounds both memory and probe cost at exactly
/// one slot — the right trade for a hot path whose hits are temporally
/// local. Purely an accelerator: values are bit-exact, so an evicted or
/// colliding entry only ever costs a re-execution, never a wrong answer.
#[derive(Debug, Clone)]
struct Cache {
    slots: Box<[CacheSlot]>,
    /// `slots.len() - 1`; the slot count is a power of two.
    index_mask: usize,
}

impl Cache {
    fn new(slots: usize) -> Cache {
        let slots = slots.next_power_of_two().max(1);
        Cache {
            slots: vec![EMPTY_SLOT; slots].into_boxed_slice(),
            index_mask: slots - 1,
        }
    }

    /// Slot a key maps to; computed once per evaluation and shared by the
    /// probe and the insert so a miss hashes exactly once.
    fn slot_of(&self, key: &CacheKey) -> usize {
        (hash_key(key) as usize) & self.index_mask
    }

    fn get_at(&self, slot: usize, key: &CacheKey, epoch: u64) -> Option<f64> {
        let slot = &self.slots[slot];
        (slot.epoch == epoch && slot.key == *key).then_some(slot.value)
    }

    fn insert_at(&mut self, slot: usize, key: CacheKey, value: f64, epoch: u64) {
        self.slots[slot] = CacheSlot { key, value, epoch };
    }

    fn insert(&mut self, key: CacheKey, value: f64, epoch: u64) {
        let slot = self.slot_of(&key);
        self.insert_at(slot, key, value, epoch);
    }

    fn live_entries(&self, epoch: u64) -> usize {
        self.slots.iter().filter(|slot| slot.epoch == epoch).count()
    }
}

/// The batched, cache-aware evaluation engine for one program's
/// representing function. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ObjectiveEngine<P> {
    program: P,
    epsilon: f64,
    /// The long-lived fast-path context: representing mode, no trace, no
    /// coverage. Owns the current saturation snapshot.
    ctx: ExecCtx,
    /// Bit-pattern memoization, `None` when disabled (by configuration or
    /// because the arity exceeds [`MAX_CACHED_ARITY`]).
    cache: Option<Cache>,
    /// Requested memo-table slot count; honored by every later
    /// [`cache_mode`](Self::cache_mode) rebuild, so builder-call order
    /// doesn't matter.
    cache_slots: usize,
    /// Current cache epoch; bumped on every snapshot change so stale slots
    /// die in O(1).
    epoch: u64,
    telemetry: EngineTelemetry,
    /// How the execution backend was selected (the [`BackendMode`] the
    /// engine was configured with; the default is [`BackendMode::Auto`]).
    mode: BackendMode,
    /// The execution backend every evaluation dispatches through: the
    /// generic [`InterpBackend`] ([`Program::execute`] + lane context), or
    /// whatever the program offered via [`Program::backend`] — e.g. the
    /// FPIR instruction tape. Batches of at least
    /// [`ExecBackend::min_batch`] points go through the backend's lane
    /// path; smaller batches and scalar calls keep the eager fast path,
    /// whose per-call overhead they already amortize.
    backend: Box<dyn ExecBackend>,
    /// Forced SIMD ISA, re-applied whenever the backend is re-resolved;
    /// `None` follows the process-wide [`SimdIsa::active`] selection.
    simd_override: Option<SimdIsa>,
    /// Bookkeeping of the batch points that missed the cache and were
    /// packed into lanes: output index plus (when caching) the slot/key to
    /// seed after the finalize. Reused across batches, allocation-free in
    /// steady state.
    lane_misses: Vec<LaneMiss>,
    /// The miss indices handed to [`ExecBackend::run_lanes`], aligned with
    /// `lane_misses`.
    miss_indices: Vec<usize>,
    /// Scratch buffer the backend's lane path writes into before the values
    /// are scattered back to their output positions.
    lane_evals: Vec<LaneEval>,
}

/// One cache-missing point of an in-flight lane batch. The value and run
/// outcome arrive from the backend as a [`LaneEval`] at flush time: a
/// non-`Done` lane's value is replaced by [`ABORTED_VALUE`] at scatter time
/// and never memoized — the same substitution the scalar path performs.
#[derive(Debug, Clone, Copy)]
struct LaneMiss {
    /// Position of the point within the submitted batch.
    index: usize,
    /// Cache slot and key to seed with the finalized value, when the
    /// engine memoizes.
    keyed: Option<(usize, CacheKey)>,
}

/// Resolves the execution backend for a program: the program's own offer
/// for the requested mode when it makes one, the generic interpreter
/// backend otherwise; either way configured with the engine's `ε` and
/// pointed at the current snapshot.
fn resolve_backend<P: Program>(
    program: &P,
    mode: BackendMode,
    epsilon: f64,
    saturated: &BranchSet,
) -> Box<dyn ExecBackend> {
    let mut backend = program
        .backend(mode)
        .unwrap_or_else(|| Box::new(InterpBackend::new()));
    backend.set_epsilon(epsilon);
    backend.retarget(saturated);
    backend
}

impl<P: Program> ObjectiveEngine<P> {
    /// Creates an engine for `program` with the given branch-distance `ε`,
    /// targeting the empty saturation snapshot (the state of round 0).
    ///
    /// # Panics
    ///
    /// Panics if the program takes no inputs.
    pub fn new(program: P, epsilon: f64) -> Self {
        let arity = program.arity();
        assert!(arity > 0, "program under test must take at least one input");
        let backend = resolve_backend(&program, BackendMode::Auto, epsilon, &BranchSet::new());
        let engine = ObjectiveEngine {
            program,
            epsilon,
            ctx: ExecCtx::representing(BranchSet::new())
                .with_epsilon(epsilon)
                .without_trace()
                .without_coverage(),
            cache: None,
            cache_slots: DEFAULT_CACHE_SLOTS,
            epoch: 1,
            telemetry: EngineTelemetry::default(),
            mode: BackendMode::Auto,
            backend,
            simd_override: None,
            lane_misses: Vec::new(),
            miss_indices: Vec::new(),
            lane_evals: Vec::new(),
        };
        engine.cache_mode(CacheMode::Auto)
    }

    /// Selects the execution backend (see [`BackendMode`]; the default is
    /// [`BackendMode::Auto`]). Every mode produces bit-identical values,
    /// coverage and telemetry — the backend is a throughput seam, never a
    /// semantic one — so this only trades interpretation overhead against
    /// the program's compiled form, when it has one.
    pub fn backend_mode(mut self, mode: BackendMode) -> Self {
        self.mode = mode;
        self.backend = resolve_backend(&self.program, mode, self.epsilon, self.ctx.saturated());
        if let Some(isa) = self.simd_override {
            self.backend.set_simd(isa);
        }
        self
    }

    /// Forces the SIMD ISA of the backend's lane kernels (the
    /// `--simd`/`COVERME_SIMD` knob, resolved per engine). Bit-exact under
    /// every ISA — purely a throughput knob, like
    /// [`backend_mode`](Self::backend_mode) — and sticky across later
    /// backend re-resolution.
    ///
    /// # Panics
    ///
    /// Panics if this machine cannot execute `isa` (CLI front ends
    /// validate with [`SimdIsa::is_supported`] first).
    pub fn simd(mut self, isa: SimdIsa) -> Self {
        self.simd_override = Some(isa);
        self.backend.set_simd(isa);
        self
    }

    /// The SIMD ISA the backend's lane kernels dispatch to (recorded in
    /// reports next to the backend name).
    pub fn simd_isa(&self) -> SimdIsa {
        self.backend.simd_isa()
    }

    /// The name of the execution backend actually in use (`"interp"`,
    /// `"tape"`, …) — the effective backend, not the requested mode: an
    /// engine asked for [`BackendMode::Tape`] on a program without a tape
    /// reports `"interp"`.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Number of evaluations the backend's batched path processes in
    /// lockstep (recorded in reports next to the backend name).
    pub fn lane_width(&self) -> usize {
        self.backend.lane_width()
    }

    /// Sets the memoization policy (see [`CacheMode`]; the default is
    /// [`CacheMode::Auto`]). Searches produce identical results under every
    /// mode (property-tested in `tests/objective_properties.rs`) — the mode
    /// only trades probe overhead against re-execution cost. Programs wider
    /// than [`MAX_CACHED_ARITY`] never cache regardless.
    pub fn cache_mode(mut self, mode: CacheMode) -> Self {
        let enabled = match mode {
            CacheMode::Auto => self.program.num_sites() >= AUTO_CACHE_MIN_SITES,
            CacheMode::On => true,
            CacheMode::Off => false,
        };
        self.cache = (enabled && self.program.arity() <= MAX_CACHED_ARITY)
            .then(|| Cache::new(self.cache_slots));
        self
    }

    /// Convenience for [`cache_mode`](Self::cache_mode):
    /// `true` → [`CacheMode::On`], `false` → [`CacheMode::Off`].
    pub fn with_cache(self, enabled: bool) -> Self {
        self.cache_mode(if enabled {
            CacheMode::On
        } else {
            CacheMode::Off
        })
    }

    /// Overrides the memo-table slot count (rounded up to a power of two;
    /// see [`DEFAULT_CACHE_SLOTS`]). Order-independent with the mode
    /// builders: the count is remembered and honored by any later
    /// [`cache_mode`](Self::cache_mode)/[`with_cache`](Self::with_cache)
    /// call too.
    pub fn cache_capacity(mut self, slots: usize) -> Self {
        self.cache_slots = slots;
        if self.cache.is_some() {
            self.cache = Some(Cache::new(slots));
        }
        self
    }

    /// The program under evaluation.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Number of inputs of the underlying program.
    pub fn arity(&self) -> usize {
        self.program.arity()
    }

    /// The saturation snapshot the engine currently evaluates against.
    pub fn saturated(&self) -> &BranchSet {
        self.ctx.saturated()
    }

    /// Work counters accumulated so far.
    pub fn telemetry(&self) -> EngineTelemetry {
        self.telemetry
    }

    /// Number of live memoized entries (0 when the cache is disabled).
    /// Scans the table — diagnostics and tests only, not a hot-path call.
    pub fn cache_len(&self) -> usize {
        self.cache
            .as_ref()
            .map_or(0, |cache| cache.live_entries(self.epoch))
    }

    /// Points the engine at a new saturation snapshot (the start of a
    /// driver round). When the snapshot actually differs, the representing
    /// function changed and the memoized values are stale, so the cache
    /// epoch is bumped — an O(1) invalidation of every live entry; a
    /// snapshot equal to the current one keeps the epoch, so a round that
    /// made no saturation progress inherits every value the previous
    /// rounds computed.
    pub fn retarget(&mut self, saturated: &BranchSet) {
        if self.ctx.saturated() == saturated {
            return;
        }
        self.ctx.retarget(saturated.clone());
        self.backend.retarget(saturated);
        self.epoch += 1;
    }

    /// Evaluates `FOO_R(x)` on the allocation-free fast path, consulting
    /// the memoization cache first.
    pub fn eval_scalar(&mut self, x: &[f64]) -> f64 {
        self.telemetry.calls += 1;
        // Hash once; probe and (on a miss) insert share the slot index.
        let keyed = self.cache.as_ref().map(|cache| {
            let key = cache_key(x);
            (cache.slot_of(&key), key)
        });
        if let (Some(cache), Some((slot, key))) = (&self.cache, &keyed) {
            if let Some(value) = cache.get_at(*slot, key, self.epoch) {
                self.telemetry.cache_hits += 1;
                return value;
            }
        }
        self.telemetry.evals += 1;
        self.ctx.reset();
        self.backend.run(&self.program, x, &mut self.ctx);
        let outcome = self.ctx.run_outcome();
        if !outcome.is_done() {
            // Aborted run: the accumulator is garbage. Substitute the
            // deterministic sentinel and keep it out of the memo table.
            self.telemetry.classify(outcome);
            return ABORTED_VALUE;
        }
        let value = self.ctx.representing_value();
        if let (Some(cache), Some((slot, key))) = (&mut self.cache, keyed) {
            cache.insert_at(slot, key, value, self.epoch);
        }
        value
    }

    /// Evaluates a whole batch through the execution backend's lane path:
    /// points are probed against the memo cache first, the misses are
    /// packed into [`ExecBackend::lane_width`]-wide groups, and every full
    /// group runs through [`ExecBackend::run_lanes`] (for the interpreter
    /// backend: one deferred-penalty execution per lane — a pen-code gather
    /// per conditional instead of a distance computation — plus one
    /// lockstep finalize; for the tape backend: all lanes through the
    /// compiled tape). Values land at their input positions in `values`
    /// (appended, not cleared), bit-for-bit equal to sequential
    /// [`eval_scalar`](Self::eval_scalar) answers.
    ///
    /// One observable difference from the scalar *loop* exists in the
    /// telemetry only: a point duplicated within one lane group is
    /// evaluated per occurrence (its first value is not yet cached when the
    /// second occurrence is probed), so `evals`/`cache_hits` may split
    /// differently — `calls`, the values, and every search result are
    /// identical.
    pub fn eval_lanes(&mut self, points: &[Vec<f64>], values: &mut Vec<f64>) {
        self.telemetry.calls += points.len() as u64;
        let base = values.len();
        values.resize(base + points.len(), 0.0);
        self.lane_misses.clear();
        self.miss_indices.clear();
        for (index, point) in points.iter().enumerate() {
            // Memo probe per lane before packing, same single-hash protocol
            // as the scalar path.
            let keyed = self.cache.as_ref().map(|cache| {
                let key = cache_key(point);
                (cache.slot_of(&key), key)
            });
            if let (Some(cache), Some((slot, key))) = (&self.cache, &keyed) {
                if let Some(value) = cache.get_at(*slot, key, self.epoch) {
                    self.telemetry.cache_hits += 1;
                    values[base + index] = value;
                    continue;
                }
            }
            self.telemetry.evals += 1;
            self.lane_misses.push(LaneMiss { index, keyed });
            self.miss_indices.push(index);
            if self.miss_indices.len() == self.backend.lane_width() {
                // Flushing group by group (not once per batch) keeps the
                // memo protocol identical to the historical lane path: a
                // point duplicated in a *later* group hits on the value
                // this flush seeds.
                self.flush_lanes(points, values, base);
            }
        }
        self.flush_lanes(points, values, base);
    }

    /// Runs the in-flight miss group through the backend's lane path,
    /// scatters the values to their batch positions, and seeds the memo
    /// cache with each clean miss.
    fn flush_lanes(&mut self, points: &[Vec<f64>], values: &mut [f64], base: usize) {
        if self.lane_misses.is_empty() {
            return;
        }
        self.lane_evals.clear();
        self.backend.run_lanes(
            &self.program,
            points,
            &self.miss_indices,
            &mut self.lane_evals,
        );
        debug_assert_eq!(self.lane_evals.len(), self.lane_misses.len());
        for (miss, eval) in self.lane_misses.drain(..).zip(self.lane_evals.iter()) {
            self.telemetry.classify(eval.outcome);
            if !eval.outcome.is_done() {
                values[base + miss.index] = ABORTED_VALUE;
                continue;
            }
            values[base + miss.index] = eval.value;
            if let (Some(cache), Some((slot, key))) = (&mut self.cache, miss.keyed) {
                cache.insert_at(slot, key, eval.value, self.epoch);
            }
        }
        self.miss_indices.clear();
    }

    /// Evaluates `FOO_R(x)` keeping the covered branches and the decision
    /// trace — the slow path the driver uses on accepted minima (the 0-hit
    /// path) and under `record_search_coverage`. Always executes the
    /// program (the trace cannot come from the cache) and is counted as an
    /// evaluation; the scalar cache is seeded with the value so a later
    /// fast-path probe of the same point is free.
    pub fn eval_full(&mut self, x: &[f64]) -> Evaluation {
        self.telemetry.calls += 1;
        self.telemetry.evals += 1;
        let mut ctx =
            ExecCtx::representing(self.ctx.saturated().clone()).with_epsilon(self.epsilon);
        self.backend.run(&self.program, x, &mut ctx);
        let outcome = ctx.run_outcome();
        let (covered, trace, value) = ctx.into_parts();
        if !outcome.is_done() {
            // Aborted run: substitute the sentinel (same as the scalar
            // path), skip the memo seed, and hand back the truncated
            // coverage/trace tagged with the outcome so the driver can
            // discard them.
            self.telemetry.classify(outcome);
            return Evaluation {
                value: ABORTED_VALUE,
                covered,
                trace,
                outcome,
            };
        }
        if let Some(cache) = &mut self.cache {
            cache.insert(cache_key(x), value, self.epoch);
        }
        Evaluation {
            value,
            covered,
            trace,
            outcome,
        }
    }
}

impl<P: Program> Objective for ObjectiveEngine<P> {
    fn eval_scalar(&mut self, x: &[f64]) -> f64 {
        ObjectiveEngine::eval_scalar(self, x)
    }

    /// The batch seam, dispatched through the execution backend: batches of
    /// at least [`ExecBackend::min_batch`] points go through
    /// [`eval_lanes`](ObjectiveEngine::eval_lanes) (the backend's batched
    /// lane path); smaller batches — where the per-batch setup would
    /// outweigh the batched savings — keep the scalar fast path. Either way
    /// the values are bit-for-bit those of sequential scalar evaluation, in
    /// the same order.
    fn eval_batch(&mut self, points: &[Vec<f64>], values: &mut Vec<f64>) {
        if points.len() >= self.backend.min_batch() {
            return ObjectiveEngine::eval_lanes(self, points, values);
        }
        values.reserve(points.len());
        for point in points {
            let value = ObjectiveEngine::eval_scalar(self, point);
            values.push(value);
        }
    }

    fn preferred_batch(&self) -> usize {
        self.backend.lane_width()
    }
}

/// Packs an input point into the fixed-width bit-pattern key.
///
/// Distinct bit patterns are distinct keys — `-0.0` and `0.0`, or two
/// different NaN payloads, are deliberately *not* identified, because the
/// program under test may branch on the raw bits (Fdlibm's `__HI`/`__LO`
/// word extraction does exactly that).
///
/// # Panics
///
/// Panics if `x` is wider than [`MAX_CACHED_ARITY`]; callers gate on the
/// arity when constructing the cache.
fn cache_key(x: &[f64]) -> CacheKey {
    assert!(
        x.len() <= MAX_CACHED_ARITY,
        "input too wide for the cache key"
    );
    let mut key = [0u64; MAX_CACHED_ARITY];
    for (slot, value) in key.iter_mut().zip(x) {
        *slot = value.to_bits();
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representing::RepresentingFunction;
    use coverme_runtime::{BranchId, Cmp, FnProgram, DEFAULT_EPSILON};

    /// The paper's Fig. 3 program with `square` inlined.
    fn paper_example() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let mut x = input[0];
            if ctx.branch(0, Cmp::Le, x, 1.0) {
                x += 2.5;
            }
            let y = x * x;
            if ctx.branch(1, Cmp::Eq, y, 4.0) {
                // target
            }
        })
    }

    fn snapshot_1f() -> BranchSet {
        [BranchId::false_of(1)].into_iter().collect()
    }

    #[test]
    fn fast_path_matches_representing_function_bit_for_bit() {
        let program = paper_example();
        let foo_r = RepresentingFunction::new(&program, snapshot_1f());
        let mut engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON);
        engine.retarget(&snapshot_1f());
        let mut x = -10.0;
        while x <= 10.0 {
            assert_eq!(
                engine.eval_scalar(&[x]).to_bits(),
                foo_r.eval(&[x]).to_bits(),
                "x = {x}"
            );
            x += 0.37;
        }
    }

    #[test]
    fn eval_full_matches_legacy_full_evaluation() {
        let program = paper_example();
        let foo_r = RepresentingFunction::new(&program, snapshot_1f());
        let mut engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON);
        engine.retarget(&snapshot_1f());
        for x in [-4.5, -0.5, 0.3, 1.5, 2.0] {
            let ours = engine.eval_full(&[x]);
            let legacy = foo_r.eval_full(&[x]);
            assert_eq!(ours.value.to_bits(), legacy.value.to_bits());
            assert_eq!(ours.covered, legacy.covered);
            assert_eq!(ours.trace, legacy.trace);
        }
    }

    #[test]
    fn cache_hits_skip_executions_without_changing_values() {
        let mut engine = ObjectiveEngine::new(paper_example(), DEFAULT_EPSILON).with_cache(true);
        engine.retarget(&snapshot_1f());
        let first = engine.eval_scalar(&[0.3]);
        let t = engine.telemetry();
        assert_eq!((t.calls, t.evals, t.cache_hits), (1, 1, 0));
        let second = engine.eval_scalar(&[0.3]);
        assert_eq!(first.to_bits(), second.to_bits());
        let t = engine.telemetry();
        assert_eq!((t.calls, t.evals, t.cache_hits), (2, 1, 1));
        assert_eq!(t.hit_rate(), 0.5);
    }

    #[test]
    fn retarget_to_a_new_snapshot_invalidates_the_cache() {
        let mut engine = ObjectiveEngine::new(paper_example(), DEFAULT_EPSILON).with_cache(true);
        // Against the empty snapshot FOO_R ≡ 0.
        assert_eq!(engine.eval_scalar(&[0.3]), 0.0);
        assert_eq!(engine.cache_len(), 1);
        // Against {1F} the same point has a positive value; a stale cache
        // would wrongly return 0.
        engine.retarget(&snapshot_1f());
        assert_eq!(engine.cache_len(), 0);
        assert!(engine.eval_scalar(&[0.3]) > 0.0);
    }

    #[test]
    fn retarget_to_the_same_snapshot_keeps_the_cache() {
        let mut engine = ObjectiveEngine::new(paper_example(), DEFAULT_EPSILON).with_cache(true);
        engine.retarget(&snapshot_1f());
        let _ = engine.eval_scalar(&[0.3]);
        assert_eq!(engine.cache_len(), 1);
        engine.retarget(&snapshot_1f());
        assert_eq!(engine.cache_len(), 1);
        let _ = engine.eval_scalar(&[0.3]);
        assert_eq!(engine.telemetry().cache_hits, 1);
    }

    #[test]
    fn eval_full_seeds_the_scalar_cache() {
        let mut engine = ObjectiveEngine::new(paper_example(), DEFAULT_EPSILON).with_cache(true);
        engine.retarget(&snapshot_1f());
        let full = engine.eval_full(&[2.0]);
        let scalar = engine.eval_scalar(&[2.0]);
        assert_eq!(full.value.to_bits(), scalar.to_bits());
        let t = engine.telemetry();
        assert_eq!((t.calls, t.evals, t.cache_hits), (2, 1, 1));
    }

    #[test]
    fn batch_evaluation_matches_scalar_order_and_values() {
        let points: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64 * 0.61 - 5.0]).collect();
        let mut batched_engine = ObjectiveEngine::new(paper_example(), DEFAULT_EPSILON);
        batched_engine.retarget(&snapshot_1f());
        let mut values = Vec::new();
        batched_engine.eval_batch(&points, &mut values);
        let mut scalar_engine = ObjectiveEngine::new(paper_example(), DEFAULT_EPSILON);
        scalar_engine.retarget(&snapshot_1f());
        for (point, value) in points.iter().zip(&values) {
            assert_eq!(scalar_engine.eval_scalar(point).to_bits(), value.to_bits());
        }
        assert_eq!(batched_engine.telemetry(), scalar_engine.telemetry());
    }

    #[test]
    fn disabled_cache_never_hits_but_agrees() {
        let mut cached = ObjectiveEngine::new(paper_example(), DEFAULT_EPSILON).with_cache(true);
        let mut uncached = ObjectiveEngine::new(paper_example(), DEFAULT_EPSILON).with_cache(false);
        cached.retarget(&snapshot_1f());
        uncached.retarget(&snapshot_1f());
        for x in [0.3, 0.3, 2.0, 2.0, -0.5] {
            assert_eq!(
                cached.eval_scalar(&[x]).to_bits(),
                uncached.eval_scalar(&[x]).to_bits()
            );
        }
        assert_eq!(uncached.telemetry().cache_hits, 0);
        assert_eq!(uncached.telemetry().evals, 5);
        assert!(cached.telemetry().cache_hits > 0);
    }

    #[test]
    fn cache_capacity_bounds_the_table() {
        let mut engine = ObjectiveEngine::new(paper_example(), DEFAULT_EPSILON)
            .with_cache(true)
            .cache_capacity(2);
        for i in 0..10 {
            let _ = engine.eval_scalar(&[i as f64]);
        }
        // Direct-mapped with 2 slots: at most 2 live entries, however many
        // distinct points were evaluated.
        assert!(engine.cache_len() <= 2);
        // Evicted points still evaluate correctly (just uncached).
        assert_eq!(
            engine.eval_scalar(&[7.0]).to_bits(),
            engine.eval_scalar(&[7.0]).to_bits()
        );
    }

    #[test]
    fn collisions_overwrite_and_stay_correct() {
        // A 1-slot table maximizes collisions: every distinct point evicts
        // the previous one, and correctness must be untouched.
        let program = paper_example();
        let foo_r = RepresentingFunction::new(&program, snapshot_1f());
        let mut engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON)
            .with_cache(true)
            .cache_capacity(1);
        engine.retarget(&snapshot_1f());
        for x in [0.3, 2.0, 0.3, -0.5, 2.0, 0.3] {
            assert_eq!(
                engine.eval_scalar(&[x]).to_bits(),
                foo_r.eval(&[x]).to_bits(),
                "x = {x}"
            );
        }
        assert!(engine.cache_len() <= 1);
    }

    #[test]
    fn negative_zero_and_nan_payloads_are_distinct_keys() {
        // A program that branches on the raw sign bit distinguishes -0.0
        // from 0.0; the cache must too.
        let program = FnProgram::new("signbit", 1, 1, |input: &[f64], ctx: &mut ExecCtx| {
            // Fdlibm-style high-word extraction: the sign lands in bit 31
            // of the i32, so -0.0 has hi < 0 while 0.0 has hi == 0.
            let hi = (input[0].to_bits() >> 32) as i32;
            if ctx.branch_i32(0, Cmp::Lt, hi, 0) {
                // negative half, including -0.0
            }
        });
        let saturated: BranchSet = [BranchId::true_of(0)].into_iter().collect();
        let mut engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON).with_cache(true);
        engine.retarget(&saturated);
        let pos = engine.eval_scalar(&[0.0]);
        let neg = engine.eval_scalar(&[-0.0]);
        assert_ne!(pos.to_bits(), neg.to_bits());
        assert_eq!(engine.telemetry().cache_hits, 0);
    }

    #[test]
    fn wide_arity_disables_the_cache_automatically() {
        let program = FnProgram::new("wide", 6, 1, |input: &[f64], ctx: &mut ExecCtx| {
            let sum: f64 = input.iter().sum();
            if ctx.branch(0, Cmp::Gt, sum, 1.0) {
                // then
            }
        });
        // Forcing the cache on cannot override the arity gate.
        let mut engine = ObjectiveEngine::new(&program, DEFAULT_EPSILON).with_cache(true);
        let x = vec![0.1; 6];
        let a = engine.eval_scalar(&x);
        let b = engine.eval_scalar(&x);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(engine.telemetry().cache_hits, 0);
        assert_eq!(engine.telemetry().evals, 2);
        assert_eq!(engine.cache_len(), 0);
    }

    /// A program that aborts (marks a timeout) whenever its input is
    /// negative — the shape of an interpreted program whose loop diverges
    /// on half the domain.
    fn sometimes_aborting() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("flaky", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
            let x = input[0];
            if ctx.branch(0, Cmp::Lt, x, 0.0) {
                ctx.mark_timeout();
                return; // truncated run: site 1 never reached
            }
            if ctx.branch(1, Cmp::Eq, x, 4.0) {
                // target
            }
        })
    }

    #[test]
    fn aborted_scalar_evals_return_the_sentinel_and_skip_the_cache() {
        let mut engine =
            ObjectiveEngine::new(sometimes_aborting(), DEFAULT_EPSILON).with_cache(true);
        engine.retarget(&snapshot_1f());
        assert_eq!(engine.eval_scalar(&[-1.0]), ABORTED_VALUE);
        assert_eq!(engine.cache_len(), 0, "aborted value must not be memoized");
        // Re-probing the same point re-executes (no hit on an aborted run).
        assert_eq!(engine.eval_scalar(&[-1.0]), ABORTED_VALUE);
        let t = engine.telemetry();
        assert_eq!((t.calls, t.evals, t.cache_hits), (2, 2, 0));
        assert_eq!((t.timeouts, t.traps), (2, 0));
        assert_eq!(t.aborts(), 2);
        // Clean inputs still evaluate and memoize normally.
        let clean = engine.eval_scalar(&[2.0]);
        assert!(clean.is_finite());
        assert_eq!(engine.cache_len(), 1);
    }

    #[test]
    fn aborting_batch_matches_scalar_values_and_telemetry() {
        let points: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64 * 0.7 - 5.0]).collect();
        let mut batched = ObjectiveEngine::new(sometimes_aborting(), DEFAULT_EPSILON);
        batched.retarget(&snapshot_1f());
        let mut values = Vec::new();
        batched.eval_batch(&points, &mut values);
        let mut scalar = ObjectiveEngine::new(sometimes_aborting(), DEFAULT_EPSILON);
        scalar.retarget(&snapshot_1f());
        for (point, value) in points.iter().zip(&values) {
            assert_eq!(
                scalar.eval_scalar(point).to_bits(),
                value.to_bits(),
                "{point:?}"
            );
        }
        assert_eq!(batched.telemetry(), scalar.telemetry());
        assert!(batched.telemetry().timeouts > 0);
    }

    #[test]
    fn eval_full_tags_aborted_runs_and_skips_the_seed() {
        let mut engine =
            ObjectiveEngine::new(sometimes_aborting(), DEFAULT_EPSILON).with_cache(true);
        engine.retarget(&snapshot_1f());
        let aborted = engine.eval_full(&[-2.0]);
        assert_eq!(aborted.outcome, RunOutcome::Timeout);
        assert_eq!(aborted.value, ABORTED_VALUE);
        assert_eq!(engine.cache_len(), 0);
        let clean = engine.eval_full(&[2.0]);
        assert_eq!(clean.outcome, RunOutcome::Done);
        assert!(clean.value.is_finite());
        assert_eq!(engine.cache_len(), 1);
        assert_eq!(engine.telemetry().timeouts, 1);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn rejects_zero_arity_programs() {
        let program = FnProgram::new("nullary", 0, 0, |_: &[f64], _: &mut ExecCtx| {});
        let _ = ObjectiveEngine::new(&program, DEFAULT_EPSILON);
    }
}
