//! Front-end hardening: the lexer and parser must *reject*, never crash.
//!
//! The CLI feeds whatever bytes a user's `.fpir` file contains straight
//! into [`coverme_fpir::parse`]. Every failure mode has to be a positioned
//! [`CompileError`] — a panic in the front end takes down the whole
//! `coverme` process (and, under the campaign runner, a worker thread).
//! This suite throws three families of hostile input at the pipeline:
//! pseudo-random ASCII soup, pseudo-random bytes drawn from the language's
//! own token alphabet (far more likely to get deep into the parser), and
//! truncations of valid programs (every prefix of a generated source).

use coverme_fpir::generate::generate_source;
use coverme_fpir::{check, parse};

/// SplitMix64 — deterministic hostile inputs, so failures replay.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Parse + typecheck must return, not panic; when they fail, the error
/// formats without panicking too (the CLI prints it verbatim).
fn assert_total(source: &str, label: &str) {
    match parse(source).and_then(check) {
        Ok(_) => {}
        Err(error) => {
            let rendered = format!("{error}");
            assert!(!rendered.is_empty(), "{label}: empty error message");
        }
    }
}

#[test]
fn random_ascii_soup_never_panics_the_frontend() {
    let mut rng = Rng(0x50D4);
    for case in 0..400 {
        let len = rng.usize_in(0, 160);
        let source: String = (0..len)
            .map(|_| (rng.usize_in(0x20, 0x7f) as u8) as char)
            .collect();
        assert_total(&source, &format!("ascii case {case}"));
    }
}

#[test]
fn token_alphabet_soup_never_panics_the_frontend() {
    // Fragments of real syntax glued randomly: reaches much deeper into
    // the parser than uniform bytes (expressions half-open, keywords in
    // illegal positions, unbalanced braces, dangling casts).
    const FRAGMENTS: &[&str] = &[
        "double",
        "int",
        "void",
        "if",
        "else",
        "while",
        "return",
        "(",
        ")",
        "{",
        "}",
        ";",
        ",",
        "=",
        "==",
        "!=",
        "<",
        "<=",
        ">",
        ">=",
        "+",
        "-",
        "*",
        "/",
        "%",
        "&",
        "|",
        "^",
        "~",
        "!",
        "<<",
        ">>",
        "x",
        "foo",
        "sqrt",
        "0",
        "1.5",
        "0x7ff00000",
        ".",
        "\"",
        "'",
        "\\",
        "@",
        "/*",
        "*/",
        "//",
        "\n",
    ];
    let mut rng = Rng(0xA1FA);
    for case in 0..400 {
        let len = rng.usize_in(0, 60);
        let mut source = String::new();
        for _ in 0..len {
            source.push_str(FRAGMENTS[rng.usize_in(0, FRAGMENTS.len())]);
            source.push(' ');
        }
        assert_total(&source, &format!("token case {case}"));
    }
}

#[test]
fn non_ascii_and_control_bytes_never_panic_the_lexer() {
    let mut rng = Rng(0xBEEF);
    for case in 0..200 {
        let len = rng.usize_in(0, 80);
        let source: String = (0..len)
            .map(|_| char::from_u32(rng.usize_in(0, 0x2FFF) as u32).unwrap_or('\u{FFFD}'))
            .collect();
        assert_total(&source, &format!("unicode case {case}"));
    }
}

#[test]
fn every_truncation_of_a_valid_program_fails_cleanly_or_parses() {
    // Chop a known-good program at every char boundary: the quintessential
    // "editor saved half the file" input. Each prefix either parses (rare
    // but legal — e.g. cutting between two functions) or errors with a
    // line number pointing into the file.
    for seed in [3u64, 17, 40] {
        let source = generate_source(seed);
        for end in (0..source.len()).filter(|&i| source.is_char_boundary(i)) {
            let prefix = &source[..end];
            match parse(prefix) {
                Ok(_) => {}
                Err(error) => {
                    let max_line = prefix.lines().count() as u32 + 1;
                    assert!(
                        error.line <= max_line,
                        "seed {seed}, prefix {end}: error line {} beyond the {} lines fed in",
                        error.line,
                        max_line
                    );
                }
            }
        }
    }
}

#[test]
fn truncated_corpus_files_fail_cleanly() {
    // Same property over the checked-in example corpus, so regressions in
    // the corpus itself get caught here too.
    for source in [
        include_str!("../../../examples/fpir/newton_sqrt.fpir"),
        include_str!("../../../examples/fpir/sign_juggle.fpir"),
        include_str!("../../../examples/fpir/spin.fpir"),
    ] {
        for end in (0..source.len()).filter(|&i| source.is_char_boundary(i)) {
            assert_total(&source[..end], &format!("corpus prefix {end}"));
        }
    }
}
