//! Pretty-printer round-trip properties over generated modules.
//!
//! Direct `parse(to_source(m)) == m` equality cannot hold: generated
//! modules carry line number 0 everywhere while parsed ones carry real
//! positions, and a negative literal prints as `-1.0`, which reparses as
//! unary negation of `1.0`. What must hold instead is that printing is a
//! **fixpoint after one round**: once a module has been through
//! print-and-parse, printing and parsing it again reproduces it exactly.
//! Anything less means the printer drops or reassociates syntax.

use coverme_fpir::generate::{generate_module, generate_source, ENTRY_NAME};
use coverme_fpir::{check, instrument, parse, to_source};

#[test]
fn printing_generated_modules_is_a_one_round_fixpoint() {
    for seed in 0..150u64 {
        let generated = generate_module(seed);
        let first = parse(&to_source(&generated))
            .unwrap_or_else(|e| panic!("seed {seed}: first reparse failed: {e}"));
        let second = parse(&to_source(&first))
            .unwrap_or_else(|e| panic!("seed {seed}: second reparse failed: {e}"));
        assert_eq!(
            first,
            second,
            "seed {seed}: printing is not a fixpoint\n{}",
            to_source(&first)
        );
    }
}

#[test]
fn roundtripped_modules_still_compile_to_the_same_site_count() {
    // The round trip must preserve *meaning*, not just shape: the reparsed
    // module type-checks and instruments to the same conditional sites.
    for seed in 0..150u64 {
        let direct = check(generate_module(seed)).unwrap();
        let direct_sites = instrument(direct, ENTRY_NAME).unwrap().sites.len();

        let reparsed = parse(&generate_source(seed)).unwrap();
        let reparsed = check(reparsed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let reparsed_sites = instrument(reparsed, ENTRY_NAME).unwrap().sites.len();
        assert_eq!(direct_sites, reparsed_sites, "seed {seed}");
    }
}
