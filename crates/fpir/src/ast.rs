//! Abstract syntax tree of the FPIR mini-language.

use coverme_runtime::Cmp;

/// A scalar type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// IEEE-754 binary64.
    Double,
    /// 64-bit signed integer (C `int` arithmetic in Fdlibm fits comfortably;
    /// explicit truncation to 32 bits is performed by the `__hi`/`__lo`
    /// builtins that model the high/low word accesses).
    Int,
    /// No value (function return type only).
    Void,
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Double => write!(f, "double"),
            Ty::Int => write!(f, "int"),
            Ty::Void => write!(f, "void"),
        }
    }
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integers only)
    Rem,
    /// `&` (integers only)
    BitAnd,
    /// `|` (integers only)
    BitOr,
    /// `^` (integers only)
    BitXor,
    /// `<<` (integers only)
    Shl,
    /// `>>` (integers only, arithmetic shift)
    Shr,
    /// Comparison producing an `int` 0/1.
    Cmp(Cmp),
    /// `&&` (short-circuit)
    LogicalAnd,
    /// `||` (short-circuit)
    LogicalOr,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement (integers only).
    BitNot,
    /// Logical not, producing 0/1.
    Not,
}

/// An expression. Every expression node carries the source line it started
/// on, for error messages and for line-coverage reporting.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Explicit cast `(int) e` or `(double) e`.
    Cast {
        /// Target type.
        ty: Ty,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function call (user function or builtin).
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

/// A statement, annotated with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Variable declaration with optional initializer: `double x;` or
    /// `int i = 0;`.
    Decl {
        /// Declared type.
        ty: Ty,
        /// Variable name.
        name: String,
        /// Optional initializer expression.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// Assignment `x = e;`.
    Assign {
        /// Target variable.
        name: String,
        /// Value expression.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// Conditional statement.
    If {
        /// Condition expression.
        cond: Expr,
        /// Then-block.
        then_block: Block,
        /// Optional else-block.
        else_block: Option<Block>,
        /// Source line.
        line: u32,
        /// Instrumentation site id, assigned by the instrumentation pass for
        /// conditionals whose condition is an arithmetic comparison;
        /// `None` before instrumentation or for unsupported conditions.
        site: Option<u32>,
    },
    /// While loop.
    While {
        /// Condition expression.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source line.
        line: u32,
        /// Instrumentation site id (see [`Stmt::If::site`]).
        site: Option<u32>,
    },
    /// Return statement (expression optional for `void` functions).
    Return {
        /// Returned value.
        value: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// Expression evaluated for its side effects (i.e. a call).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: u32,
    },
}

impl Stmt {
    /// The source line of the statement.
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Decl { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::ExprStmt { line, .. } => *line,
        }
    }
}

/// A sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter type.
    pub ty: Ty,
    /// Parameter name.
    pub name: String,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Return type.
    pub ret: Ty,
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
    /// Source line of the definition.
    pub line: u32,
}

/// A whole translation unit: a list of function definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// The functions, in source order.
    pub functions: Vec<FunctionDef>,
}

impl Module {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Names of the builtin functions the interpreter provides. These model the
/// math-library calls and the bit-level double access (`__HI`, `__LO`,
/// `__HI(x) = v`) that Fdlibm-style code relies on.
pub const BUILTINS: &[(&str, &[Ty], Ty)] = &[
    ("sqrt", &[Ty::Double], Ty::Double),
    ("fabs", &[Ty::Double], Ty::Double),
    ("floor", &[Ty::Double], Ty::Double),
    ("sin", &[Ty::Double], Ty::Double),
    ("cos", &[Ty::Double], Ty::Double),
    ("exp", &[Ty::Double], Ty::Double),
    ("log", &[Ty::Double], Ty::Double),
    ("pow", &[Ty::Double, Ty::Double], Ty::Double),
    // High 32 bits of the IEEE-754 representation, as a signed int —
    // the mini-language spelling of `*(1+(int*)&x)`.
    ("high_word", &[Ty::Double], Ty::Int),
    // Low 32 bits of the representation (unsigned, widened to int).
    ("low_word", &[Ty::Double], Ty::Int),
    // Rebuild a double from 32-bit high and low words.
    ("from_words", &[Ty::Int, Ty::Int], Ty::Double),
    // Replace only the high word / low word of a double.
    ("with_high_word", &[Ty::Double, Ty::Int], Ty::Double),
    ("with_low_word", &[Ty::Double, Ty::Int], Ty::Double),
    // scalbn(x, n) = x * 2^n without going through pow.
    ("scalbn", &[Ty::Double, Ty::Int], Ty::Double),
];

/// Looks up a builtin signature by name.
pub fn builtin_signature(name: &str) -> Option<(&'static [Ty], Ty)> {
    BUILTINS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, params, ret)| (*params, *ret))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        assert_eq!(Ty::Double.to_string(), "double");
        assert_eq!(Ty::Int.to_string(), "int");
        assert_eq!(Ty::Void.to_string(), "void");
    }

    #[test]
    fn stmt_line_accessor_covers_all_variants() {
        let s = Stmt::Return {
            value: None,
            line: 7,
        };
        assert_eq!(s.line(), 7);
        let s = Stmt::Assign {
            name: "x".into(),
            value: Expr::Int(1),
            line: 3,
        };
        assert_eq!(s.line(), 3);
    }

    #[test]
    fn module_function_lookup() {
        let m = Module {
            functions: vec![FunctionDef {
                ret: Ty::Double,
                name: "foo".into(),
                params: vec![],
                body: Block::default(),
                line: 1,
            }],
        };
        assert!(m.function("foo").is_some());
        assert!(m.function("bar").is_none());
    }

    #[test]
    fn builtin_signatures_resolve() {
        let (params, ret) = builtin_signature("high_word").unwrap();
        assert_eq!(params, &[Ty::Double]);
        assert_eq!(ret, Ty::Int);
        assert!(builtin_signature("does_not_exist").is_none());
        assert_eq!(builtin_signature("pow").unwrap().0.len(), 2);
    }
}
