//! A C-like floating-point mini-language ("FPIR") with an instrumentation
//! pass, standing in for the paper's Clang + LLVM-pass front end.
//!
//! The original CoverMe compiles the program under test to LLVM IR and uses
//! an LLVM pass to inject `r = pen(i, op, a, b)` before every conditional.
//! This crate provides the equivalent pipeline for a self-contained
//! language:
//!
//! 1. [`lexer`] / [`parser`] — parse a C-like source text into an AST
//!    ([`ast`]); the subset covers exactly what floating-point kernels like
//!    Fdlibm need (doubles, 64-bit ints, bit manipulation of the double
//!    representation, `if`/`while`/`return`, function calls);
//! 2. [`typeck`] — checks and annotates the AST (int vs. double, implicit
//!    promotions, call signatures);
//! 3. [`instrument`] — the analogue of the LLVM pass: identifies every
//!    conditional whose condition is an arithmetic comparison, assigns it a
//!    site id, and computes the static descendant relation used by
//!    saturation tracking;
//! 4. [`interp`] — a tree-walking interpreter that executes the instrumented
//!    program against a [`coverme_runtime::ExecCtx`], reporting every
//!    instrumented conditional through `ExecCtx::branch` (the runtime then
//!    plays the role of the injected `pen` calls);
//! 5. [`pretty`] — prints the instrumented program with the injected
//!    `r = pen(...)` assignments made explicit, reproducing the paper's
//!    Fig. 3 view of `FOO_I`.
//!
//! The end product, [`IrProgram`], implements
//! [`coverme_runtime::Program`], so the CoverMe driver (and every baseline
//! tester) can run mini-language programs exactly like natively ported ones.
//!
//! # Example
//!
//! ```
//! use coverme_fpir::compile;
//!
//! let source = r#"
//!     double foo(double x) {
//!         double y;
//!         if (x <= 1.0) { x = x + 2.5; }
//!         y = x * x;
//!         if (y == 4.0) { return 1.0; }
//!         return 0.0;
//!     }
//! "#;
//! let program = compile(source, "foo").expect("compiles");
//! assert_eq!(coverme_runtime::Program::num_sites(&program), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod generate;
pub mod instrument;
pub mod interp;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pretty;
pub mod typeck;

pub use ast::{BinOp, Block, Expr, FunctionDef, Module, Stmt, Ty, UnOp};
pub use error::{CompileError, ErrorKind};
pub use generate::{generate_module, generate_source, ENTRY_NAME};
pub use instrument::{instrument, InstrumentedModule, SiteInfo};
pub use interp::IrProgram;
pub use lexer::{Lexer, Token, TokenKind};
pub use lower::{lower, LowerError, Tape, TapeBackend};
pub use parser::parse;
pub use pretty::to_source;
pub use typeck::check;

/// Compiles `source` into an executable, instrumented program whose entry
/// point is the function named `entry`.
///
/// This is the convenience front door: lex + parse + type-check +
/// instrument, returning an [`IrProgram`] that implements
/// [`coverme_runtime::Program`].
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first lexing, parsing, typing
/// or instrumentation problem encountered.
pub fn compile(source: &str, entry: &str) -> Result<IrProgram, CompileError> {
    let module = parse(source)?;
    let module = check(module)?;
    let instrumented = instrument(module, entry)?;
    IrProgram::new(instrumented)
}
