//! Seeded random generation of well-typed FPIR modules.
//!
//! The differential test suites need *many* programs, not a handful of
//! hand-written ones: scalar-vs-lane bit-identity, cache transparency and
//! outcome classification are invariants over the whole language, and the
//! hand corpus only exercises the corners someone thought of. This module
//! generates modules that are well-typed **by construction** — fresh names
//! (no redeclarations, no builtin shadowing), int-only operators applied to
//! ints, every call matching a real signature — so every output passes
//! [`crate::typeck::check`] and instruments cleanly, and a failure
//! downstream is a real interpreter or engine bug, never generator junk.
//!
//! The generated programs deliberately include hazards whose *classified*
//! failure is defined behavior the suites must see, not something to
//! generate around: loops that may not terminate (a counter loop whose
//! step is zero, classified [`coverme_runtime::RunOutcome::Timeout`] when
//! the fuel runs out) and, with ~8% probability, a helper that recurses
//! unboundedly on part of its domain — inputs landing there blow the
//! interpreter's call-depth limit and classify
//! [`coverme_runtime::RunOutcome::Trap`].
//!
//! Helpers form call graphs: each helper may call any earlier helper (and
//! the recursive hazard calls itself), so generated modules exercise
//! multi-frame call stacks, not just entry → leaf dispatch.
//!
//! Generation is deterministic per seed (an inline SplitMix64 stream), so a
//! failing seed reproduces exactly.

use coverme_runtime::Cmp;

use crate::ast::{BinOp, Block, Expr, FunctionDef, Module, Param, Stmt, Ty, UnOp};

/// Name of the generated entry function (always defined last).
pub const ENTRY_NAME: &str = "entry";

/// Generates a well-typed module from `seed`: zero to four `double` helper
/// functions (forming call graphs into earlier helpers; ~8% of slots hold
/// the recursive trap hazard) followed by an entry function [`ENTRY_NAME`]
/// taking one to three parameters (the first always `double`), whose body
/// starts with an instrumented conditional on the first parameter — so the
/// instrumented program always has at least one site.
pub fn generate_module(seed: u64) -> Module {
    Generator::new(seed).module()
}

/// Renders [`generate_module`]'s output back to source text (see
/// [`crate::pretty::to_source`]).
pub fn generate_source(seed: u64) -> String {
    crate::pretty::to_source(&generate_module(seed))
}

/// SplitMix64 — the same deterministic stream the optimizer crate uses,
/// inlined so the front end stays dependency-free.
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`; `lo` when the range is empty.
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

struct Generator {
    rng: Rng,
    /// Variables in scope of the function currently being generated.
    vars: Vec<(String, Ty)>,
    /// Helper functions generated so far: `(name, param count)`, all
    /// `double(double, ...)`, callable from later functions.
    helpers: Vec<(String, usize)>,
    /// Fresh-name counter — globally unique names make redeclaration and
    /// accidental shadowing impossible by construction.
    next_var: usize,
}

impl Generator {
    fn new(seed: u64) -> Generator {
        Generator {
            rng: Rng::new(seed),
            vars: Vec::new(),
            helpers: Vec::new(),
            next_var: 0,
        }
    }

    fn module(mut self) -> Module {
        let mut functions = Vec::new();
        for index in 0..self.rng.usize_in(0, 5) {
            // ~8% of helper slots hold the recursive trap hazard instead
            // of a plain straight-line helper.
            if self.rng.chance(0.08) {
                functions.push(self.recursive_helper(index));
            } else {
                functions.push(self.helper(index));
            }
        }
        functions.push(self.entry());
        Module { functions }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        let name = format!("{prefix}{}", self.next_var);
        self.next_var += 1;
        name
    }

    /// The recursive trap hazard: a helper that returns immediately below a
    /// threshold but recurses unboundedly at or above it —
    ///
    /// ```text
    /// double hN(double q) {
    ///     if (q < T) { return <base expr>; }
    ///     return hN(q + 1.0) + <literal>;
    /// }
    /// ```
    ///
    /// `q + 1.0` never drops below `T`, so any execution entering the
    /// recursive arm blows the interpreter's call-depth limit and is
    /// classified [`coverme_runtime::RunOutcome::Trap`]; inputs below the
    /// threshold return normally, so the hazard splits the input domain
    /// instead of poisoning every execution.
    fn recursive_helper(&mut self, index: usize) -> FunctionDef {
        self.vars.clear();
        let name = format!("h{index}");
        let param = Param {
            ty: Ty::Double,
            name: self.fresh("q"),
        };
        self.vars.push((param.name.clone(), param.ty));
        let threshold = self.double_literal();
        let base = self.expr(Ty::Double, 2);
        let recurse = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Call {
                name: name.clone(),
                args: vec![Expr::Binary {
                    op: BinOp::Add,
                    lhs: Box::new(Expr::Var(param.name.clone())),
                    rhs: Box::new(Expr::Float(1.0)),
                }],
            }),
            rhs: Box::new(self.double_literal()),
        };
        let body = Block {
            stmts: vec![
                Stmt::If {
                    cond: Expr::Binary {
                        op: BinOp::Cmp(Cmp::Lt),
                        lhs: Box::new(Expr::Var(param.name.clone())),
                        rhs: Box::new(threshold),
                    },
                    then_block: Block {
                        stmts: vec![Stmt::Return {
                            value: Some(base),
                            line: 0,
                        }],
                    },
                    else_block: None,
                    line: 0,
                    site: None,
                },
                Stmt::Return {
                    value: Some(recurse),
                    line: 0,
                },
            ],
        };
        self.helpers.push((name.clone(), 1));
        FunctionDef {
            ret: Ty::Double,
            name,
            params: vec![param],
            body,
            line: 0,
        }
    }

    /// A small side-effect-free helper: declarations plus a return and no
    /// loops, but free to call any *earlier* helper (directly in its
    /// expressions, and with extra bias through the chaining wrap below) —
    /// so later helpers sit on top of real multi-frame call graphs.
    fn helper(&mut self, index: usize) -> FunctionDef {
        self.vars.clear();
        let name = format!("h{index}");
        let arity = self.rng.usize_in(1, 3);
        let params: Vec<Param> = (0..arity)
            .map(|_| {
                let param = Param {
                    ty: Ty::Double,
                    name: self.fresh("q"),
                };
                self.vars.push((param.name.clone(), param.ty));
                param
            })
            .collect();
        let mut stmts = Vec::new();
        for _ in 0..self.rng.usize_in(0, 3) {
            stmts.push(self.decl_stmt());
        }
        let mut value = self.expr(Ty::Double, 2);
        // Half the time, chain the result through an earlier helper: this
        // is what grows deep call graphs (h3 → h2 → h1 → h0) instead of a
        // flat entry-calls-leaves shape.
        if self.rng.chance(0.5) {
            if let Some((callee, callee_arity)) = self.pick_helper() {
                let mut args = vec![value];
                for _ in 1..callee_arity {
                    args.push(self.expr(Ty::Double, 1));
                }
                value = Expr::Call { name: callee, args };
            }
        }
        stmts.push(Stmt::Return {
            value: Some(value),
            line: 0,
        });
        let body = Block { stmts };
        self.helpers.push((name.clone(), arity));
        FunctionDef {
            ret: Ty::Double,
            name,
            params,
            body,
            line: 0,
        }
    }

    fn entry(&mut self) -> FunctionDef {
        self.vars.clear();
        let arity = self.rng.usize_in(1, 4);
        let params: Vec<Param> = (0..arity)
            .map(|_| {
                // Entry parameters are all doubles: the instrumentation
                // pass (like the paper's front end) only admits
                // double-typed inputs to the function under test.
                let param = Param {
                    ty: Ty::Double,
                    name: self.fresh("p"),
                };
                self.vars.push((param.name.clone(), param.ty));
                param
            })
            .collect();

        let mut stmts = Vec::new();
        // Guaranteed instrumented site: a conditional on the first
        // parameter, so no generated program degenerates to zero sites.
        let cond = Expr::Binary {
            op: BinOp::Cmp(self.cmp()),
            lhs: Box::new(Expr::Var(params[0].name.clone())),
            rhs: Box::new(self.double_literal()),
        };
        let then_budget = self.rng.usize_in(1, 3);
        let then_block = self.block(then_budget, 1);
        stmts.push(Stmt::If {
            cond,
            then_block,
            else_block: None,
            line: 0,
            site: None,
        });
        let tail_budget = self.rng.usize_in(2, 7);
        stmts.extend(self.stmts(tail_budget, 0));
        let value = self.expr(Ty::Double, 2);
        stmts.push(Stmt::Return {
            value: Some(value),
            line: 0,
        });

        FunctionDef {
            ret: Ty::Double,
            name: ENTRY_NAME.to_string(),
            params,
            body: Block { stmts },
            line: 0,
        }
    }

    /// A block with its own scope: names declared inside go out of scope
    /// with it, exercising the interpreter's scope stack.
    fn block(&mut self, budget: usize, depth: usize) -> Block {
        let mark = self.vars.len();
        let stmts = self.stmts(budget, depth);
        self.vars.truncate(mark);
        Block { stmts }
    }

    fn stmts(&mut self, budget: usize, depth: usize) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        for _ in 0..budget {
            let roll = self.rng.next_f64();
            if roll < 0.35 {
                stmts.push(self.decl_stmt());
            } else if roll < 0.55 {
                match self.assign_stmt() {
                    Some(stmt) => stmts.push(stmt),
                    None => stmts.push(self.decl_stmt()),
                }
            } else if roll < 0.8 || depth >= 2 {
                let cond = self.cond_expr();
                let then_budget = self.rng.usize_in(1, 3);
                let then_block = self.block(then_budget, depth + 1);
                let else_block = if self.rng.chance(0.3) {
                    let else_budget = self.rng.usize_in(1, 3);
                    Some(self.block(else_budget, depth + 1))
                } else {
                    None
                };
                stmts.push(Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    line: 0,
                    site: None,
                });
            } else {
                stmts.extend(self.counter_loop(depth));
            }
        }
        stmts
    }

    fn decl_stmt(&mut self) -> Stmt {
        let ty = if self.rng.chance(0.6) {
            Ty::Double
        } else {
            Ty::Int
        };
        let name = self.fresh("v");
        let init = self.expr(ty, 2);
        self.vars.push((name.clone(), ty));
        Stmt::Decl {
            ty,
            name,
            init: Some(init),
            line: 0,
        }
    }

    fn assign_stmt(&mut self) -> Option<Stmt> {
        if self.vars.is_empty() {
            return None;
        }
        let index = self.rng.usize_in(0, self.vars.len());
        let (name, ty) = self.vars[index].clone();
        let value = self.expr(ty, 2);
        Some(Stmt::Assign {
            name,
            value,
            line: 0,
        })
    }

    /// A counter loop `int c = 0; while (c < bound) { ...; c = c + step; }`.
    /// With ~10% probability the step is zero: the loop never terminates
    /// and every execution reaching it burns its fuel — the Timeout
    /// classification the suites must exercise.
    fn counter_loop(&mut self, depth: usize) -> Vec<Stmt> {
        let counter = self.fresh("c");
        let bound = self.rng.usize_in(2, 9) as i64;
        let step = if self.rng.chance(0.1) { 0 } else { 1 };
        let decl = Stmt::Decl {
            ty: Ty::Int,
            name: counter.clone(),
            init: Some(Expr::Int(0)),
            line: 0,
        };
        // The counter is visible inside the body (declared before the
        // loop), but the body must not reassign it: generate the body
        // without the counter in scope, then append the step.
        let body_budget = self.rng.usize_in(1, 3);
        let mut body = self.block(body_budget, depth + 1);
        body.stmts.push(Stmt::Assign {
            name: counter.clone(),
            value: Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::Var(counter.clone())),
                rhs: Box::new(Expr::Int(step)),
            },
            line: 0,
        });
        let cond = Expr::Binary {
            op: BinOp::Cmp(Cmp::Lt),
            lhs: Box::new(Expr::Var(counter)),
            rhs: Box::new(Expr::Int(bound)),
        };
        vec![
            decl,
            Stmt::While {
                cond,
                body,
                line: 0,
                site: None,
            },
        ]
    }

    fn cmp(&mut self) -> Cmp {
        match self.rng.usize_in(0, 6) {
            0 => Cmp::Eq,
            1 => Cmp::Ne,
            2 => Cmp::Lt,
            3 => Cmp::Le,
            4 => Cmp::Gt,
            _ => Cmp::Ge,
        }
    }

    /// A comparison condition for an `if`/`while` — both operands of the
    /// same numeric type, so the instrumentation pass always accepts it.
    fn cond_expr(&mut self) -> Expr {
        let ty = if self.rng.chance(0.7) {
            Ty::Double
        } else {
            Ty::Int
        };
        Expr::Binary {
            op: BinOp::Cmp(self.cmp()),
            lhs: Box::new(self.expr(ty, 1)),
            rhs: Box::new(self.expr(ty, 1)),
        }
    }

    fn var_of(&mut self, ty: Ty) -> Option<Expr> {
        let candidates: Vec<&String> = self
            .vars
            .iter()
            .filter(|(_, t)| *t == ty)
            .map(|(name, _)| name)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let index = self.rng.usize_in(0, candidates.len());
        Some(Expr::Var(candidates[index].clone()))
    }

    fn double_literal(&mut self) -> Expr {
        const POOL: &[f64] = &[0.0, 0.5, 1.0, 2.0, 4.0, 10.0, 0.25, 100.0];
        if self.rng.chance(0.5) {
            Expr::Float(POOL[self.rng.usize_in(0, POOL.len())])
        } else {
            // A few decimals, so printing and reparsing is exact.
            let raw = (self.rng.next_f64() * 32.0 * 1000.0).round() / 1000.0;
            Expr::Float(raw)
        }
    }

    fn int_literal(&mut self) -> Expr {
        const MASKS: &[i64] = &[0x1, 0xff, 0x7fffffff, 0x100000, 0x3ff];
        if self.rng.chance(0.25) {
            Expr::Int(MASKS[self.rng.usize_in(0, MASKS.len())])
        } else {
            Expr::Int(self.rng.usize_in(0, 65) as i64)
        }
    }

    /// A well-typed expression of type `ty` with nesting bounded by
    /// `depth`. Negative constants appear as unary negation of a positive
    /// literal — the only shape the parser itself produces.
    fn expr(&mut self, ty: Ty, depth: usize) -> Expr {
        if depth == 0 || self.rng.chance(0.3) {
            let leaf = match (self.var_of(ty), self.rng.chance(0.65)) {
                (Some(var), true) => var,
                _ if ty == Ty::Double => self.double_literal(),
                _ => self.int_literal(),
            };
            return if self.rng.chance(0.15) {
                Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(leaf),
                }
            } else {
                leaf
            };
        }
        match ty {
            Ty::Double => match self.rng.usize_in(0, 10) {
                0..=4 => {
                    let op = match self.rng.usize_in(0, 4) {
                        0 => BinOp::Add,
                        1 => BinOp::Sub,
                        2 => BinOp::Mul,
                        _ => BinOp::Div,
                    };
                    Expr::Binary {
                        op,
                        lhs: Box::new(self.expr(Ty::Double, depth - 1)),
                        rhs: Box::new(self.expr(Ty::Double, depth - 1)),
                    }
                }
                5 | 6 => {
                    const UNARY: &[&str] = &["sqrt", "fabs", "sin", "cos", "floor"];
                    Expr::Call {
                        name: UNARY[self.rng.usize_in(0, UNARY.len())].to_string(),
                        args: vec![self.expr(Ty::Double, depth - 1)],
                    }
                }
                7 => Expr::Cast {
                    ty: Ty::Double,
                    expr: Box::new(self.expr(Ty::Int, depth - 1)),
                },
                8 => Expr::Call {
                    name: "scalbn".to_string(),
                    args: vec![
                        self.expr(Ty::Double, depth - 1),
                        self.expr(Ty::Int, depth - 1),
                    ],
                },
                _ => {
                    if let Some((name, arity)) = self.pick_helper() {
                        let args = (0..arity)
                            .map(|_| self.expr(Ty::Double, depth - 1))
                            .collect();
                        Expr::Call { name, args }
                    } else {
                        self.expr(Ty::Double, 0)
                    }
                }
            },
            Ty::Int => match self.rng.usize_in(0, 10) {
                0..=4 => {
                    let op = match self.rng.usize_in(0, 6) {
                        0 => BinOp::Add,
                        1 => BinOp::Sub,
                        2 => BinOp::Mul,
                        3 => BinOp::BitAnd,
                        4 => BinOp::BitOr,
                        _ => BinOp::BitXor,
                    };
                    Expr::Binary {
                        op,
                        lhs: Box::new(self.expr(Ty::Int, depth - 1)),
                        rhs: Box::new(self.expr(Ty::Int, depth - 1)),
                    }
                }
                5 => Expr::Unary {
                    op: UnOp::BitNot,
                    expr: Box::new(self.expr(Ty::Int, depth - 1)),
                },
                6 => Expr::Cast {
                    ty: Ty::Int,
                    expr: Box::new(self.expr(Ty::Double, depth - 1)),
                },
                7 | 8 => {
                    let word = if self.rng.chance(0.5) {
                        "high_word"
                    } else {
                        "low_word"
                    };
                    Expr::Call {
                        name: word.to_string(),
                        args: vec![self.expr(Ty::Double, depth - 1)],
                    }
                }
                // An uninstrumented comparison inside a larger expression —
                // the interpreter path instrumented conditionals never take.
                _ => Expr::Binary {
                    op: BinOp::Cmp(self.cmp()),
                    lhs: Box::new(self.expr(Ty::Double, depth - 1)),
                    rhs: Box::new(self.expr(Ty::Double, depth - 1)),
                },
            },
            Ty::Void => unreachable!("no void expressions are generated"),
        }
    }

    fn pick_helper(&mut self) -> Option<(String, usize)> {
        if self.helpers.is_empty() {
            return None;
        }
        let index = self.rng.usize_in(0, self.helpers.len());
        Some(self.helpers[index].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::IrProgram;
    use crate::{check, instrument};
    use coverme_runtime::{ExecCtx, Program, RunOutcome};

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(generate_module(7), generate_module(7));
        assert_eq!(generate_source(123), generate_source(123));
        // Different seeds almost surely differ.
        assert_ne!(generate_source(1), generate_source(2));
    }

    #[test]
    fn generated_modules_typecheck_instrument_and_execute() {
        let mut timeouts = 0usize;
        let mut traps = 0usize;
        for seed in 0..150u64 {
            let module = generate_module(seed);
            let module = check(module).unwrap_or_else(|e| panic!("seed {seed}: typeck: {e}"));
            let inst = instrument(module, ENTRY_NAME)
                .unwrap_or_else(|e| panic!("seed {seed}: instrument: {e}"));
            let program = IrProgram::new(inst)
                .unwrap_or_else(|e| panic!("seed {seed}: program: {e}"))
                .with_fuel(20_000);
            assert!(program.num_sites() >= 1, "seed {seed}: no sites");
            for input_seed in 0..3u64 {
                let mut rng = Rng::new(seed ^ (input_seed.wrapping_mul(0x9E37_79B9)));
                let input: Vec<f64> = (0..program.arity())
                    .map(|_| (rng.next_f64() - 0.5) * 20.0)
                    .collect();
                let mut ctx = ExecCtx::observe();
                program.execute(&input, &mut ctx);
                match ctx.run_outcome() {
                    RunOutcome::Timeout => timeouts += 1,
                    RunOutcome::Trap => traps += 1,
                    RunOutcome::Done => {}
                }
            }
        }
        // Both hazard kinds must actually fire somewhere in 150 programs:
        // the zero-step loop (timeout) and the unbounded recursion (trap).
        assert!(timeouts > 0, "no generated program ever timed out");
        assert!(traps > 0, "no generated program ever trapped");
    }

    #[test]
    fn helper_call_graphs_reach_depth_two() {
        // Some generated module must contain a helper calling an earlier
        // helper (entry → hN → hM), or the chaining logic regressed.
        fn block_calls_helper(block: &Block, out: &mut Vec<String>) {
            for stmt in &block.stmts {
                match stmt {
                    Stmt::Decl { init: Some(e), .. }
                    | Stmt::Assign { value: e, .. }
                    | Stmt::Return { value: Some(e), .. }
                    | Stmt::ExprStmt { expr: e, .. } => expr_calls(e, out),
                    Stmt::If {
                        cond,
                        then_block,
                        else_block,
                        ..
                    } => {
                        expr_calls(cond, out);
                        block_calls_helper(then_block, out);
                        if let Some(e) = else_block {
                            block_calls_helper(e, out);
                        }
                    }
                    Stmt::While { cond, body, .. } => {
                        expr_calls(cond, out);
                        block_calls_helper(body, out);
                    }
                    _ => {}
                }
            }
        }
        fn expr_calls(expr: &Expr, out: &mut Vec<String>) {
            match expr {
                Expr::Call { name, args } => {
                    if name.starts_with('h') {
                        out.push(name.clone());
                    }
                    for a in args {
                        expr_calls(a, out);
                    }
                }
                Expr::Binary { lhs, rhs, .. } => {
                    expr_calls(lhs, out);
                    expr_calls(rhs, out);
                }
                Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => expr_calls(expr, out),
                _ => {}
            }
        }
        let mut chained = false;
        let mut recursive = false;
        for seed in 0..200u64 {
            let module = generate_module(seed);
            for f in &module.functions {
                if f.name == ENTRY_NAME {
                    continue;
                }
                let mut calls = Vec::new();
                block_calls_helper(&f.body, &mut calls);
                if calls.iter().any(|c| c == &f.name) {
                    recursive = true;
                } else if !calls.is_empty() {
                    chained = true;
                }
            }
        }
        assert!(chained, "no helper ever called another helper");
        assert!(recursive, "no recursive hazard helper was generated");
    }

    #[test]
    fn generated_sources_reparse() {
        for seed in 0..50u64 {
            let source = generate_source(seed);
            let module =
                crate::parse(&source).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));
            check(module).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));
        }
    }
}
