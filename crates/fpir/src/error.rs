//! Compilation errors for the FPIR mini-language.

use std::fmt;

/// The phase/category of a compilation problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Invalid character sequence or malformed literal.
    Lex,
    /// The token stream does not match the grammar.
    Parse,
    /// Name resolution or type mismatch.
    Type,
    /// Instrumentation-time problems (missing entry function, unsupported
    /// parameter types, ...).
    Instrument,
    /// Runtime failures surfaced at compile-time analysis (e.g. recursion
    /// depth limits detected eagerly).
    Interp,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            ErrorKind::Lex => "lex error",
            ErrorKind::Parse => "parse error",
            ErrorKind::Type => "type error",
            ErrorKind::Instrument => "instrumentation error",
            ErrorKind::Interp => "interpreter error",
        };
        write!(f, "{label}")
    }
}

/// A compilation error with location information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Which phase rejected the program.
    pub kind: ErrorKind,
    /// 1-based source line, when known (0 = unknown).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Creates an error with a known source line.
    pub fn at(kind: ErrorKind, line: u32, message: impl Into<String>) -> CompileError {
        CompileError {
            kind,
            line,
            message: message.into(),
        }
    }

    /// Creates an error without location information.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> CompileError {
        CompileError::at(kind, 0, message)
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {}: {}", self.kind, self.line, self.message)
        } else {
            write!(f, "{}: {}", self.kind, self.message)
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_when_known() {
        let e = CompileError::at(ErrorKind::Parse, 3, "expected ')'");
        assert_eq!(e.to_string(), "parse error at line 3: expected ')'");
    }

    #[test]
    fn display_omits_line_when_unknown() {
        let e = CompileError::new(ErrorKind::Type, "unknown variable `y`");
        assert_eq!(e.to_string(), "type error: unknown variable `y`");
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&CompileError::new(ErrorKind::Lex, "bad char"));
    }
}
