//! Type checking for the FPIR mini-language.
//!
//! The language follows C's arithmetic conventions for the `double`/`int`
//! pair: arithmetic between an `int` and a `double` promotes to `double`,
//! assignments and initializations convert implicitly (truncating on
//! `double → int`, as Fdlibm code expects from `(int) x`), and the bitwise
//! operators, shifts and `%` are integer-only. The checker validates name
//! resolution, call signatures and those operator restrictions; it does not
//! rewrite the tree (the interpreter re-derives operand types dynamically,
//! which keeps the AST small and the two phases independently testable).

use std::collections::HashMap;

use crate::ast::{builtin_signature, BinOp, Block, Expr, Module, Stmt, Ty, UnOp};
use crate::error::{CompileError, ErrorKind};

/// Type-checks a module, returning it unchanged on success.
///
/// # Errors
///
/// Returns the first name-resolution or type error found.
pub fn check(module: Module) -> Result<Module, CompileError> {
    let mut signatures: HashMap<String, (Vec<Ty>, Ty)> = HashMap::new();
    for f in &module.functions {
        if builtin_signature(&f.name).is_some() {
            return Err(CompileError::at(
                ErrorKind::Type,
                f.line,
                format!("function `{}` shadows a builtin", f.name),
            ));
        }
        if signatures
            .insert(
                f.name.clone(),
                (f.params.iter().map(|p| p.ty).collect(), f.ret),
            )
            .is_some()
        {
            return Err(CompileError::at(
                ErrorKind::Type,
                f.line,
                format!("duplicate definition of function `{}`", f.name),
            ));
        }
    }

    for f in &module.functions {
        let mut checker = Checker {
            signatures: &signatures,
            scopes: vec![HashMap::new()],
            ret: f.ret,
        };
        for p in &f.params {
            if p.ty == Ty::Void {
                return Err(CompileError::at(
                    ErrorKind::Type,
                    f.line,
                    format!("parameter `{}` cannot have type void", p.name),
                ));
            }
            checker.declare(&p.name, p.ty, f.line)?;
        }
        checker.check_block(&f.body)?;
    }
    Ok(module)
}

struct Checker<'a> {
    signatures: &'a HashMap<String, (Vec<Ty>, Ty)>,
    scopes: Vec<HashMap<String, Ty>>,
    ret: Ty,
}

impl Checker<'_> {
    fn declare(&mut self, name: &str, ty: Ty, line: u32) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("at least one scope");
        if scope.insert(name.to_string(), ty).is_some() {
            return Err(CompileError::at(
                ErrorKind::Type,
                line,
                format!("variable `{name}` redeclared in the same scope"),
            ));
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Ty> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn check_block(&mut self, block: &Block) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.check_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Decl {
                ty,
                name,
                init,
                line,
            } => {
                if *ty == Ty::Void {
                    return Err(CompileError::at(
                        ErrorKind::Type,
                        *line,
                        format!("variable `{name}` cannot have type void"),
                    ));
                }
                if let Some(init) = init {
                    let init_ty = self.check_expr(init, *line)?;
                    ensure_scalar(init_ty, *line)?;
                }
                self.declare(name, *ty, *line)
            }
            Stmt::Assign { name, value, line } => {
                let Some(_target) = self.lookup(name) else {
                    return Err(CompileError::at(
                        ErrorKind::Type,
                        *line,
                        format!("assignment to undeclared variable `{name}`"),
                    ));
                };
                let value_ty = self.check_expr(value, *line)?;
                ensure_scalar(value_ty, *line)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                line,
                ..
            } => {
                let cond_ty = self.check_expr(cond, *line)?;
                ensure_scalar(cond_ty, *line)?;
                self.check_block(then_block)?;
                if let Some(else_block) = else_block {
                    self.check_block(else_block)?;
                }
                Ok(())
            }
            Stmt::While {
                cond, body, line, ..
            } => {
                let cond_ty = self.check_expr(cond, *line)?;
                ensure_scalar(cond_ty, *line)?;
                self.check_block(body)
            }
            Stmt::Return { value, line } => match (value, self.ret) {
                (None, Ty::Void) => Ok(()),
                (None, other) => Err(CompileError::at(
                    ErrorKind::Type,
                    *line,
                    format!("return without a value in a function returning {other}"),
                )),
                (Some(_), Ty::Void) => Err(CompileError::at(
                    ErrorKind::Type,
                    *line,
                    "return with a value in a void function",
                )),
                (Some(v), _) => {
                    let ty = self.check_expr(v, *line)?;
                    ensure_scalar(ty, *line)
                }
            },
            Stmt::ExprStmt { expr, line } => {
                self.check_expr(expr, *line)?;
                Ok(())
            }
        }
    }

    fn check_expr(&mut self, expr: &Expr, line: u32) -> Result<Ty, CompileError> {
        match expr {
            Expr::Int(_) => Ok(Ty::Int),
            Expr::Float(_) => Ok(Ty::Double),
            Expr::Var(name) => self.lookup(name).ok_or_else(|| {
                CompileError::at(ErrorKind::Type, line, format!("unknown variable `{name}`"))
            }),
            Expr::Unary { op, expr } => {
                let ty = self.check_expr(expr, line)?;
                ensure_scalar(ty, line)?;
                match op {
                    UnOp::Neg => Ok(ty),
                    UnOp::BitNot => {
                        if ty != Ty::Int {
                            return Err(CompileError::at(
                                ErrorKind::Type,
                                line,
                                "bitwise complement requires an int operand",
                            ));
                        }
                        Ok(Ty::Int)
                    }
                    UnOp::Not => Ok(Ty::Int),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs, line)?;
                let rt = self.check_expr(rhs, line)?;
                ensure_scalar(lt, line)?;
                ensure_scalar(rt, line)?;
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        if lt == Ty::Double || rt == Ty::Double {
                            Ok(Ty::Double)
                        } else {
                            Ok(Ty::Int)
                        }
                    }
                    BinOp::Rem
                    | BinOp::BitAnd
                    | BinOp::BitOr
                    | BinOp::BitXor
                    | BinOp::Shl
                    | BinOp::Shr => {
                        if lt != Ty::Int || rt != Ty::Int {
                            return Err(CompileError::at(
                                ErrorKind::Type,
                                line,
                                format!("operator requires int operands, got {lt} and {rt}"),
                            ));
                        }
                        Ok(Ty::Int)
                    }
                    BinOp::Cmp(_) | BinOp::LogicalAnd | BinOp::LogicalOr => Ok(Ty::Int),
                }
            }
            Expr::Cast { ty, expr } => {
                if *ty == Ty::Void {
                    return Err(CompileError::at(
                        ErrorKind::Type,
                        line,
                        "cannot cast to void",
                    ));
                }
                let inner = self.check_expr(expr, line)?;
                ensure_scalar(inner, line)?;
                Ok(*ty)
            }
            Expr::Call { name, args } => {
                let (params, ret): (Vec<Ty>, Ty) =
                    if let Some((params, ret)) = builtin_signature(name) {
                        (params.to_vec(), ret)
                    } else if let Some((params, ret)) = self.signatures.get(name) {
                        (params.clone(), *ret)
                    } else {
                        return Err(CompileError::at(
                            ErrorKind::Type,
                            line,
                            format!("call to unknown function `{name}`"),
                        ));
                    };
                if params.len() != args.len() {
                    return Err(CompileError::at(
                        ErrorKind::Type,
                        line,
                        format!(
                            "`{name}` expects {} argument(s), got {}",
                            params.len(),
                            args.len()
                        ),
                    ));
                }
                for arg in args {
                    let ty = self.check_expr(arg, line)?;
                    ensure_scalar(ty, line)?;
                }
                Ok(ret)
            }
        }
    }
}

fn ensure_scalar(ty: Ty, line: u32) -> Result<(), CompileError> {
    if ty == Ty::Void {
        Err(CompileError::at(
            ErrorKind::Type,
            line,
            "void value used where a scalar is required",
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<Module, CompileError> {
        check(parse(src).expect("parses"))
    }

    #[test]
    fn accepts_well_typed_program() {
        check_src(
            r#"
            double square(double x) { return x * x; }
            double foo(double x) {
                int ix = high_word(x) & 0x7fffffff;
                if (ix >= 0x7ff00000) { return 0.0; }
                double y = square(x) + 1;
                return y;
            }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_unknown_variable() {
        let err = check_src("double f(double x) { return y; }").unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }

    #[test]
    fn rejects_unknown_function() {
        let err = check_src("double f(double x) { return g(x); }").unwrap_err();
        assert!(err.message.contains("unknown function"));
    }

    #[test]
    fn rejects_wrong_arity_call() {
        let err = check_src("double f(double x) { return sqrt(x, x); }").unwrap_err();
        assert!(err.message.contains("expects 1 argument"));
    }

    #[test]
    fn rejects_bitwise_on_double() {
        let err = check_src("double f(double x) { return x & 1; }").unwrap_err();
        assert!(err.message.contains("int operands"));
    }

    #[test]
    fn rejects_duplicate_function() {
        let err = check_src("double f(double x) { return x; } double f(double y) { return y; }")
            .unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn rejects_shadowing_builtin() {
        let err = check_src("double sqrt(double x) { return x; }").unwrap_err();
        assert!(err.message.contains("shadows a builtin"));
    }

    #[test]
    fn rejects_assignment_to_undeclared() {
        let err = check_src("double f(double x) { y = 1.0; return x; }").unwrap_err();
        assert!(err.message.contains("undeclared"));
    }

    #[test]
    fn rejects_redeclaration_in_same_scope() {
        let err = check_src("double f(double x) { double a; double a; return x; }").unwrap_err();
        assert!(err.message.contains("redeclared"));
    }

    #[test]
    fn allows_shadowing_in_inner_scope() {
        check_src(
            "double f(double x) { double a = 1.0; if (x < 0.0) { double a = 2.0; x = a; } return a; }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_void_return_mismatch() {
        let err = check_src("double f(double x) { return; }").unwrap_err();
        assert!(err.message.contains("without a value"));
        let err = check_src("void f(double x) { return x; }").unwrap_err();
        assert!(err.message.contains("void function"));
    }

    #[test]
    fn mixed_arithmetic_promotes() {
        check_src("double f(double x) { int i = 2; return x + i; }").unwrap();
    }
}
