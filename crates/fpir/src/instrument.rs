//! The instrumentation pass — the analogue of the paper's LLVM pass.
//!
//! The pass walks every function of the module, assigns a site id to each
//! conditional (`if`/`while`) whose condition is an arithmetic comparison
//! `a op b`, and records per-site metadata. Conceptually each such
//! conditional is preceded by the injected assignment
//! `r = pen(site, op, a, b)`; the interpreter performs that assignment by
//! calling [`coverme_runtime::ExecCtx::branch`], and the pretty printer can
//! render it textually (Fig. 3's `FOO_I` view).
//!
//! The pass also computes the **static descendant relation** between
//! branches (Definition 3.2): for every branch it determines which other
//! branch sites are reachable once that branch is taken, including sites of
//! functions (transitively) called from the reachable region. The CoverMe
//! driver's saturation tracker consumes this relation directly, giving the
//! mini-language path the exact saturation semantics of the paper rather
//! than the dynamically learned approximation used for native ports.
//!
//! Conditionals whose condition is not a comparison (e.g. `if (flag)` or a
//! `&&` combination) are left uninstrumented, exactly as CoverMe "ignores
//! these conditional statements by not injecting pen before them"
//! (Sect. 5.3).

use std::collections::HashMap;

use coverme_runtime::{BranchId, BranchSet, Cmp};

use crate::ast::{BinOp, Block, Expr, FunctionDef, Module, Stmt, Ty};
use crate::error::{CompileError, ErrorKind};

/// Metadata about one instrumented conditional site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteInfo {
    /// The site id (dense, starting at 0).
    pub site: u32,
    /// The function the conditional lives in.
    pub function: String,
    /// Source line of the conditional.
    pub line: u32,
    /// The comparison operator of the condition.
    pub op: Cmp,
    /// Whether the conditional is a loop header (`while`) rather than `if`.
    pub is_loop: bool,
}

/// An instrumented module: the annotated AST plus site metadata and the
/// static descendant relation.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrumentedModule {
    /// The annotated module (site ids filled in on `If`/`While` nodes).
    pub module: Module,
    /// Name of the entry function.
    pub entry: String,
    /// Per-site metadata, indexed by site id.
    pub sites: Vec<SiteInfo>,
    /// `descendants[b.index()]` = branches reachable after taking branch `b`.
    pub descendants: Vec<BranchSet>,
}

impl InstrumentedModule {
    /// Number of instrumented conditional sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// The entry function definition.
    pub fn entry_function(&self) -> &FunctionDef {
        self.module
            .function(&self.entry)
            .expect("entry existence was checked during instrumentation")
    }
}

/// Runs the instrumentation pass.
///
/// # Errors
///
/// Fails when the entry function does not exist, or when its parameters are
/// not all `double` (the paper excludes such benchmark functions; see its
/// Table 4 "unsupported input type").
pub fn instrument(module: Module, entry: &str) -> Result<InstrumentedModule, CompileError> {
    let Some(entry_fn) = module.function(entry) else {
        return Err(CompileError::new(
            ErrorKind::Instrument,
            format!("entry function `{entry}` not found"),
        ));
    };
    if entry_fn.params.is_empty() {
        return Err(CompileError::at(
            ErrorKind::Instrument,
            entry_fn.line,
            format!("entry function `{entry}` takes no inputs"),
        ));
    }
    if entry_fn.params.iter().any(|p| p.ty != Ty::Double) {
        return Err(CompileError::at(
            ErrorKind::Instrument,
            entry_fn.line,
            format!("entry function `{entry}` has non-double parameters (unsupported input type)"),
        ));
    }

    let mut module = module;
    let mut sites = Vec::new();

    // Pass 1: assign site ids, function by function in source order.
    for function in &mut module.functions {
        let name = function.name.clone();
        assign_sites(&mut function.body, &name, &mut sites);
    }

    // Pass 2: per-function branch sets (own sites, all directions), needed to
    // fold called functions into the descendant relation.
    let mut fn_sites: HashMap<String, BranchSet> = HashMap::new();
    for function in &module.functions {
        let mut set = BranchSet::new();
        collect_block_sites(&function.body, &mut set);
        fn_sites.insert(function.name.clone(), set);
    }
    // Transitive closure over calls: a function's reachable site set includes
    // the sites of every function it calls (directly or indirectly).
    let call_edges: HashMap<String, Vec<String>> = module
        .functions
        .iter()
        .map(|f| (f.name.clone(), called_functions(&f.body)))
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (caller, callees) in &call_edges {
            let mut addition = BranchSet::new();
            for callee in callees {
                if let Some(callee_sites) = fn_sites.get(callee) {
                    addition.union_with(callee_sites);
                }
            }
            let caller_set = fn_sites.get_mut(caller).expect("all functions present");
            if caller_set.union_with(&addition) > 0 {
                changed = true;
            }
        }
    }

    // Pass 3: the descendant relation.
    let mut descendants = vec![BranchSet::new(); sites.len() * 2];
    for function in &module.functions {
        compute_descendants(
            &function.body,
            &BranchSet::new(),
            &fn_sites,
            &mut descendants,
        );
    }

    Ok(InstrumentedModule {
        module,
        entry: entry.to_string(),
        sites,
        descendants,
    })
}

/// Extracts `(op, lhs, rhs)` when the expression is a top-level comparison.
pub(crate) fn as_comparison(expr: &Expr) -> Option<(Cmp, &Expr, &Expr)> {
    if let Expr::Binary {
        op: BinOp::Cmp(cmp),
        lhs,
        rhs,
    } = expr
    {
        Some((*cmp, lhs, rhs))
    } else {
        None
    }
}

fn assign_sites(block: &mut Block, function: &str, sites: &mut Vec<SiteInfo>) {
    for stmt in &mut block.stmts {
        match stmt {
            Stmt::If {
                cond,
                then_block,
                else_block,
                line,
                site,
            } => {
                if let Some((op, _, _)) = as_comparison(cond) {
                    let id = sites.len() as u32;
                    *site = Some(id);
                    sites.push(SiteInfo {
                        site: id,
                        function: function.to_string(),
                        line: *line,
                        op,
                        is_loop: false,
                    });
                }
                assign_sites(then_block, function, sites);
                if let Some(else_block) = else_block {
                    assign_sites(else_block, function, sites);
                }
            }
            Stmt::While {
                cond,
                body,
                line,
                site,
            } => {
                if let Some((op, _, _)) = as_comparison(cond) {
                    let id = sites.len() as u32;
                    *site = Some(id);
                    sites.push(SiteInfo {
                        site: id,
                        function: function.to_string(),
                        line: *line,
                        op,
                        is_loop: true,
                    });
                }
                assign_sites(body, function, sites);
            }
            _ => {}
        }
    }
}

/// Adds both branches of every instrumented site in `block` (recursively,
/// not following calls) to `out`.
fn collect_block_sites(block: &Block, out: &mut BranchSet) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::If {
                then_block,
                else_block,
                site,
                ..
            } => {
                if let Some(site) = site {
                    out.insert(BranchId::true_of(*site));
                    out.insert(BranchId::false_of(*site));
                }
                collect_block_sites(then_block, out);
                if let Some(else_block) = else_block {
                    collect_block_sites(else_block, out);
                }
            }
            Stmt::While { body, site, .. } => {
                if let Some(site) = site {
                    out.insert(BranchId::true_of(*site));
                    out.insert(BranchId::false_of(*site));
                }
                collect_block_sites(body, out);
            }
            _ => {}
        }
    }
}

/// Names of functions called anywhere in a block (expressions included).
fn called_functions(block: &Block) -> Vec<String> {
    let mut out = Vec::new();
    fn walk_expr(expr: &Expr, out: &mut Vec<String>) {
        match expr {
            Expr::Call { name, args } => {
                out.push(name.clone());
                for a in args {
                    walk_expr(a, out);
                }
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => walk_expr(expr, out),
            Expr::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, out);
                walk_expr(rhs, out);
            }
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => {}
        }
    }
    fn walk_block(block: &Block, out: &mut Vec<String>) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Decl { init, .. } => {
                    if let Some(init) = init {
                        walk_expr(init, out);
                    }
                }
                Stmt::Assign { value, .. } => walk_expr(value, out),
                Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    ..
                } => {
                    walk_expr(cond, out);
                    walk_block(then_block, out);
                    if let Some(e) = else_block {
                        walk_block(e, out);
                    }
                }
                Stmt::While { cond, body, .. } => {
                    walk_expr(cond, out);
                    walk_block(body, out);
                }
                Stmt::Return { value, .. } => {
                    if let Some(v) = value {
                        walk_expr(v, out);
                    }
                }
                Stmt::ExprStmt { expr, .. } => walk_expr(expr, out),
            }
        }
    }
    walk_block(block, &mut out);
    out
}

/// Branch sites syntactically inside a statement, including sites of called
/// functions (via the pre-computed transitive `fn_sites` map).
fn stmt_sites(stmt: &Stmt, fn_sites: &HashMap<String, BranchSet>) -> BranchSet {
    let block = Block {
        stmts: vec![stmt.clone()],
    };
    let mut set = BranchSet::new();
    collect_block_sites(&block, &mut set);
    for callee in called_functions(&block) {
        if let Some(callee_sites) = fn_sites.get(&callee) {
            set.union_with(callee_sites);
        }
    }
    set
}

/// Computes the descendant relation for every instrumented conditional of a
/// block. `following` is the set of branches reachable after the block
/// finishes (i.e. branches of statements that follow the block in the
/// enclosing control flow).
fn compute_descendants(
    block: &Block,
    following: &BranchSet,
    fn_sites: &HashMap<String, BranchSet>,
    descendants: &mut Vec<BranchSet>,
) {
    let n = block.stmts.len();
    // after[i] = branches of statements strictly after i, plus `following`.
    let mut after = vec![BranchSet::new(); n + 1];
    after[n] = following.clone();
    for i in (0..n).rev() {
        let mut set = after[i + 1].clone();
        set.union_with(&stmt_sites(&block.stmts[i], fn_sites));
        after[i] = set;
    }

    for (i, stmt) in block.stmts.iter().enumerate() {
        match stmt {
            Stmt::If {
                then_block,
                else_block,
                site,
                ..
            } => {
                let then_sites = block_sites_with_calls(then_block, fn_sites);
                let else_sites = else_block
                    .as_ref()
                    .map(|b| block_sites_with_calls(b, fn_sites))
                    .unwrap_or_default();
                if let Some(site) = site {
                    let mut true_desc = then_sites.clone();
                    true_desc.union_with(&after[i + 1]);
                    let mut false_desc = else_sites.clone();
                    false_desc.union_with(&after[i + 1]);
                    descendants[BranchId::true_of(*site).index()] = true_desc;
                    descendants[BranchId::false_of(*site).index()] = false_desc;
                }
                compute_descendants(then_block, &after[i + 1], fn_sites, descendants);
                if let Some(else_block) = else_block {
                    compute_descendants(else_block, &after[i + 1], fn_sites, descendants);
                }
            }
            Stmt::While { body, site, .. } => {
                let body_sites = block_sites_with_calls(body, fn_sites);
                if let Some(site) = site {
                    // Taking the loop branch reaches the body, the loop
                    // condition again (both of its branches), and whatever
                    // follows the loop.
                    let mut true_desc = body_sites.clone();
                    true_desc.insert(BranchId::true_of(*site));
                    true_desc.insert(BranchId::false_of(*site));
                    true_desc.union_with(&after[i + 1]);
                    descendants[BranchId::true_of(*site).index()] = true_desc;
                    descendants[BranchId::false_of(*site).index()] = after[i + 1].clone();
                }
                // Statements in the body can loop back to the condition.
                let mut body_following = after[i + 1].clone();
                if let Some(site) = site {
                    body_following.insert(BranchId::true_of(*site));
                    body_following.insert(BranchId::false_of(*site));
                }
                body_following.union_with(&body_sites);
                compute_descendants(body, &body_following, fn_sites, descendants);
            }
            _ => {}
        }
    }
}

fn block_sites_with_calls(block: &Block, fn_sites: &HashMap<String, BranchSet>) -> BranchSet {
    let mut set = BranchSet::new();
    collect_block_sites(block, &mut set);
    for callee in called_functions(block) {
        if let Some(callee_sites) = fn_sites.get(&callee) {
            set.union_with(callee_sites);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typeck::check;

    fn instrument_src(src: &str, entry: &str) -> InstrumentedModule {
        instrument(check(parse(src).unwrap()).unwrap(), entry).unwrap()
    }

    const PAPER_EXAMPLE: &str = r#"
        double square(double x) { return x * x; }
        double foo(double x) {
            if (x <= 1.0) { x = x + 2.5; }
            double y = square(x);
            if (y == 4.0) { return 1.0; }
            return 0.0;
        }
    "#;

    #[test]
    fn assigns_site_ids_in_source_order() {
        let inst = instrument_src(PAPER_EXAMPLE, "foo");
        assert_eq!(inst.num_sites(), 2);
        assert_eq!(inst.sites[0].op, Cmp::Le);
        assert_eq!(inst.sites[1].op, Cmp::Eq);
        assert_eq!(inst.sites[0].function, "foo");
        assert!(!inst.sites[0].is_loop);
    }

    #[test]
    fn descendant_relation_matches_paper_example() {
        let inst = instrument_src(PAPER_EXAMPLE, "foo");
        // 0T and 0F both lead to the second conditional (site 1).
        let d0t = &inst.descendants[BranchId::true_of(0).index()];
        let d0f = &inst.descendants[BranchId::false_of(0).index()];
        assert!(d0t.contains(BranchId::true_of(1)));
        assert!(d0t.contains(BranchId::false_of(1)));
        assert!(d0f.contains(BranchId::true_of(1)));
        // Site 1 is a leaf: no descendants.
        assert!(inst.descendants[BranchId::true_of(1).index()].is_empty());
        assert!(inst.descendants[BranchId::false_of(1).index()].is_empty());
    }

    #[test]
    fn nested_conditionals_have_nested_descendants() {
        let inst = instrument_src(
            r#"
            double f(double x) {
                if (x > 0.0) {
                    if (x > 10.0) { return 2.0; }
                }
                return 0.0;
            }
            "#,
            "f",
        );
        let d_outer_true = &inst.descendants[BranchId::true_of(0).index()];
        assert!(d_outer_true.contains(BranchId::true_of(1)));
        let d_outer_false = &inst.descendants[BranchId::false_of(0).index()];
        assert!(!d_outer_false.contains(BranchId::true_of(1)));
    }

    #[test]
    fn while_loop_branches_include_the_loop_itself() {
        let inst = instrument_src(
            r#"
            int f(double x) {
                int i = 0;
                while (i < 10) {
                    if (x > 0.5) { x = x - 1.0; }
                    i = i + 1;
                }
                if (x == 0.0) { return 1; }
                return 0;
            }
            "#,
            "f",
        );
        assert_eq!(inst.num_sites(), 3);
        assert!(inst.sites[0].is_loop);
        let dt = &inst.descendants[BranchId::true_of(0).index()];
        // Loop-true reaches the inner if, the loop header again, and the
        // conditional after the loop.
        assert!(dt.contains(BranchId::true_of(1)));
        assert!(dt.contains(BranchId::true_of(0)));
        assert!(dt.contains(BranchId::true_of(2)));
        // Loop-false skips the body but still reaches the trailing if.
        let df = &inst.descendants[BranchId::false_of(0).index()];
        assert!(!df.contains(BranchId::true_of(1)));
        assert!(df.contains(BranchId::false_of(2)));
    }

    #[test]
    fn callee_sites_become_descendants_of_the_caller_branch() {
        let inst = instrument_src(
            r#"
            double goo(double x) {
                if (sin(x) <= 0.99) { return 1.0; }
                return 0.0;
            }
            double foo(double x) {
                if (x > 0.0) { return goo(x); }
                return 0.0;
            }
            "#,
            "foo",
        );
        assert_eq!(inst.num_sites(), 2);
        // Site 0 is goo's conditional (source order), site 1 is foo's.
        assert_eq!(inst.sites[0].function, "goo");
        assert_eq!(inst.sites[1].function, "foo");
        let d_foo_true = &inst.descendants[BranchId::true_of(1).index()];
        assert!(d_foo_true.contains(BranchId::true_of(0)));
        assert!(d_foo_true.contains(BranchId::false_of(0)));
    }

    #[test]
    fn non_comparison_conditions_are_not_instrumented() {
        let inst = instrument_src(
            r#"
            double f(double x) {
                int flag = 1;
                if (flag && x > 0.0) { return 1.0; }
                if (x >= 2.0) { return 2.0; }
                return 0.0;
            }
            "#,
            "f",
        );
        // Only the plain comparison is instrumented.
        assert_eq!(inst.num_sites(), 1);
        assert_eq!(inst.sites[0].op, Cmp::Ge);
    }

    #[test]
    fn rejects_missing_entry() {
        let module = check(parse("double f(double x) { return x; }").unwrap()).unwrap();
        let err = instrument(module, "nope").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Instrument);
    }

    #[test]
    fn rejects_non_double_entry_parameters() {
        let module = check(parse("double f(int n) { return 1.0; }").unwrap()).unwrap();
        let err = instrument(module, "f").unwrap_err();
        assert!(err.message.contains("unsupported input type"));
    }

    #[test]
    fn rejects_nullary_entry() {
        let module = check(parse("double f() { return 1.0; }").unwrap()).unwrap();
        let err = instrument(module, "f").unwrap_err();
        assert!(err.message.contains("no inputs"));
    }
}
