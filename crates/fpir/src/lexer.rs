//! Lexer for the FPIR mini-language.
//!
//! The token set is the C subset floating-point kernels need: identifiers,
//! integer literals (decimal and hex), floating literals, the arithmetic /
//! bitwise / comparison operators, and the keywords `double`, `int`, `if`,
//! `else`, `while`, `return`. Comments (`// ...` and `/* ... */`) are
//! skipped.

use crate::error::{CompileError, ErrorKind};

/// The kind of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword-candidate name.
    Ident(String),
    /// An integer literal (decimal or `0x...` hex).
    IntLit(i64),
    /// A floating-point literal.
    FloatLit(f64),
    /// `double`
    KwDouble,
    /// `int`
    KwInt,
    /// `void`
    KwVoid,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `=`
    Assign,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// End of input.
    Eof,
}

/// A token together with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// A simple hand-written scanner.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Tokenizes the whole input.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] on the first unrecognized character or
    /// malformed literal.
    pub fn tokenize(mut self) -> Result<Vec<Token>, CompileError> {
        let mut tokens = Vec::new();
        loop {
            let token = self.next_token()?;
            let is_eof = token.kind == TokenKind::Eof;
            tokens.push(token);
            if is_eof {
                break;
            }
        }
        Ok(tokens)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start_line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(CompileError::at(
                                    ErrorKind::Lex,
                                    start_line,
                                    "unterminated block comment",
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, CompileError> {
        self.skip_whitespace_and_comments()?;
        let line = self.line;
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                line,
            });
        };

        let kind = match c {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b';' => {
                self.bump();
                TokenKind::Semicolon
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'-' => {
                self.bump();
                TokenKind::Minus
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'%' => {
                self.bump();
                TokenKind::Percent
            }
            b'~' => {
                self.bump();
                TokenKind::Tilde
            }
            b'^' => {
                self.bump();
                TokenKind::Caret
            }
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    TokenKind::Amp
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    TokenKind::Pipe
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::Le
                    }
                    Some(b'<') => {
                        self.bump();
                        TokenKind::Shl
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::Ge
                    }
                    Some(b'>') => {
                        self.bump();
                        TokenKind::Shr
                    }
                    _ => TokenKind::Gt,
                }
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    TokenKind::Bang
                }
            }
            c if c.is_ascii_digit()
                || (c == b'.' && self.peek2().is_some_and(|d| d.is_ascii_digit())) =>
            {
                self.lex_number(line)?
            }
            c if c.is_ascii_alphabetic() || c == b'_' => self.lex_ident(),
            other => {
                return Err(CompileError::at(
                    ErrorKind::Lex,
                    line,
                    format!("unexpected character '{}'", other as char),
                ));
            }
        };
        Ok(Token { kind, line })
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii identifiers");
        match text {
            "double" => TokenKind::KwDouble,
            "int" => TokenKind::KwInt,
            "void" => TokenKind::KwVoid,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            _ => TokenKind::Ident(text.to_string()),
        }
    }

    fn lex_number(&mut self, line: u32) -> Result<TokenKind, CompileError> {
        let start = self.pos;
        // Hex literal.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    self.bump();
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.src[digits_start..self.pos]).unwrap();
            if text.is_empty() {
                return Err(CompileError::at(ErrorKind::Lex, line, "empty hex literal"));
            }
            // Fdlibm writes masks like 0xffffffff that exceed i32 but fit u32;
            // parse as u64 then reinterpret within i64.
            let value = u64::from_str_radix(text, 16).map_err(|_| {
                CompileError::at(
                    ErrorKind::Lex,
                    line,
                    format!("invalid hex literal 0x{text}"),
                )
            })?;
            return Ok(TokenKind::IntLit(value as i64));
        }

        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !saw_dot && !saw_exp => {
                    saw_dot = true;
                    self.bump();
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if saw_dot || saw_exp {
            let value: f64 = text.parse().map_err(|_| {
                CompileError::at(
                    ErrorKind::Lex,
                    line,
                    format!("invalid float literal {text}"),
                )
            })?;
            Ok(TokenKind::FloatLit(value))
        } else {
            let value: i64 = text.parse().map_err(|_| {
                CompileError::at(ErrorKind::Lex, line, format!("invalid int literal {text}"))
            })?;
            Ok(TokenKind::IntLit(value))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        Lexer::new(source)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        let k = kinds("double foo int _bar if else while return void for");
        assert_eq!(
            k,
            vec![
                TokenKind::KwDouble,
                TokenKind::Ident("foo".into()),
                TokenKind::KwInt,
                TokenKind::Ident("_bar".into()),
                TokenKind::KwIf,
                TokenKind::KwElse,
                TokenKind::KwWhile,
                TokenKind::KwReturn,
                TokenKind::KwVoid,
                TokenKind::KwFor,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        let k = kinds("42 3.5 0x7ff00000 1e-3 2.5e2 0xffffffff");
        assert_eq!(
            k,
            vec![
                TokenKind::IntLit(42),
                TokenKind::FloatLit(3.5),
                TokenKind::IntLit(0x7ff0_0000),
                TokenKind::FloatLit(1e-3),
                TokenKind::FloatLit(2.5e2),
                TokenKind::IntLit(0xffff_ffff),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let k = kinds("+ - * / % & | ^ ~ ! << >> < <= > >= == != = && ||");
        assert_eq!(
            k,
            vec![
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Amp,
                TokenKind::Pipe,
                TokenKind::Caret,
                TokenKind::Tilde,
                TokenKind::Bang,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Assign,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let tokens = Lexer::new("// line comment\nx /* block\ncomment */ y")
            .tokenize()
            .unwrap();
        assert_eq!(tokens[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(tokens[0].line, 2);
        assert_eq!(tokens[1].kind, TokenKind::Ident("y".into()));
        assert_eq!(tokens[1].line, 3);
    }

    #[test]
    fn reports_unexpected_character() {
        let err = Lexer::new("x @ y").tokenize().unwrap_err();
        assert_eq!(err.kind, ErrorKind::Lex);
        assert!(err.message.contains('@'));
    }

    #[test]
    fn reports_unterminated_block_comment() {
        let err = Lexer::new("/* never ends").tokenize().unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn leading_dot_float() {
        assert_eq!(kinds(".5")[0], TokenKind::FloatLit(0.5));
    }
}
