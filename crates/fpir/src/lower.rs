//! Lowering instrumented FPIR modules to a flat, register-based
//! instruction tape, plus the tape executors.
//!
//! The tree-walking [`interp`](crate::interp) re-traverses the AST on every
//! evaluation — fine for one run, wasteful for the 100k+ evaluations a
//! search performs per function. This pass compiles the type-checked,
//! instrumented module **once** into a [`Tape`]: straight-line basic blocks
//! of register ops with explicit terminators (jumps, instrumented branch
//! sites, calls, returns, traps). Two executors run the tape:
//!
//! * [`Tape::execute`] — the scalar path, driving any [`ExecCtx`] mode
//!   (observe, eager representing, deferred) exactly like the interpreter;
//! * the lane executor inside [`TapeBackend`] — runs up to
//!   [`SimdIsa::lane_width`] evaluations with per-lane program counters,
//!   executing each basic block's ops in lockstep across the lanes
//!   currently parked on it, gathering deferred-penalty events from a
//!   shared [`pen_code_table`] and finalizing through the vectorized
//!   [`resolve_pen_lanes_with`] kernels of the backend's SIMD ISA.
//!
//! On top of the lockstep walk, lowering precomputes a **straight-line-SoA
//! plan** ([`SoaPlan`], private) per basic block: blocks whose ops are all
//! double-typed arithmetic/moves/math-calls get their register file
//! transposed into structure-of-arrays columns and executed as vector ops
//! ([`simd::vec_bin`]/[`simd::vec_neg`]) across every lane parked on the
//! block. Blocks that mix integer slots, or chunks where fewer than two
//! lanes are parked together, fall back to the per-lane op walk. The plan
//! is a pure execution detail: it is excluded from [`Tape::serialize`] and
//! the fingerprint, and the SoA kernels are bit-identical to the scalar
//! walk, so corpus keys and artifacts cannot observe it.
//!
//! # Bit-exactness
//!
//! The tape is a *throughput* representation, never a semantic one: values
//! (bit-for-bit), coverage, traces, [`RunOutcome`] classification and step
//! accounting all match the interpreter exactly. Two mechanics make the
//! step accounting work:
//!
//! * **Burn folding.** The interpreter burns one fuel step per statement
//!   and per expression node, checking the budget after each burn. The
//!   tape folds all burns of a basic block into one `cost` checked at the
//!   block header. This is observably equivalent because blocks are
//!   straight-line and contain no observable events (branch reports, pen
//!   updates, traps): within such a segment, "fuel ran out" is detected
//!   before the next observable either way, and nothing else distinguishes
//!   *where* inside the segment the budget tripped. Calls terminate their
//!   block, so the argument-evaluation burns are checked **before** the
//!   callee depth check — preserving the interpreter's Timeout-before-Trap
//!   classification order.
//! * **Short-circuit burns are control flow.** `&&`/`||` burn their right
//!   operand only when it is evaluated; the tape lowers them to branches,
//!   so the right operand's cost sits in a block that is only entered (and
//!   therefore only charged) when the interpreter would evaluate it.
//!
//! Lowering is conservative: anything the (type-checked) module should
//! rule out but this pass cannot mirror statically — unknown variables,
//! register overflow — aborts with a [`LowerError`] and the program simply
//! keeps using the interpreter backend.

use std::collections::HashMap;
use std::sync::Arc;

use coverme_runtime::simd::{self, VecBin};
use coverme_runtime::{
    pen_code, pen_code_table, resolve_pen_lanes_with, BackendMode, BranchSet, Cmp, ExecBackend,
    ExecCtx, LaneEval, Program, RunOutcome, SimdIsa, LANE_WIDTH,
};

use crate::ast::{BinOp, Block as AstBlock, Expr, Module, Stmt, Ty, UnOp};
use crate::instrument::as_comparison;
use crate::interp::{int_compare, IrProgram, MAX_DEPTH};

/// A runtime register value. Mirrors the interpreter's `Value` exactly —
/// same tag dynamics, same conversions — so the executors inherit its
/// semantics by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    Int(i64),
    Double(f64),
}

impl Slot {
    fn as_f64(self) -> f64 {
        match self {
            Slot::Int(v) => v as f64,
            Slot::Double(v) => v,
        }
    }

    fn as_i64(self) -> i64 {
        match self {
            Slot::Int(v) => v,
            Slot::Double(v) => {
                if v.is_nan() {
                    0
                } else {
                    v.trunc().clamp(i64::MIN as f64, i64::MAX as f64) as i64
                }
            }
        }
    }

    fn truthy(self) -> bool {
        match self {
            Slot::Int(v) => v != 0,
            Slot::Double(v) => v != 0.0,
        }
    }

    fn coerce(self, ty: Ty) -> Slot {
        match ty {
            Ty::Int => Slot::Int(self.as_i64()),
            Ty::Double => Slot::Double(self.as_f64()),
            Ty::Void => self,
        }
    }
}

/// A builtin callable, resolved at lowering time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Builtin {
    Sqrt,
    Fabs,
    Floor,
    Sin,
    Cos,
    Exp,
    Log,
    Pow,
    HighWord,
    LowWord,
    FromWords,
    WithHighWord,
    WithLowWord,
    Scalbn,
}

impl Builtin {
    fn from_name(name: &str) -> Option<(Builtin, usize)> {
        Some(match name {
            "sqrt" => (Builtin::Sqrt, 1),
            "fabs" => (Builtin::Fabs, 1),
            "floor" => (Builtin::Floor, 1),
            "sin" => (Builtin::Sin, 1),
            "cos" => (Builtin::Cos, 1),
            "exp" => (Builtin::Exp, 1),
            "log" => (Builtin::Log, 1),
            "pow" => (Builtin::Pow, 2),
            "high_word" => (Builtin::HighWord, 1),
            "low_word" => (Builtin::LowWord, 1),
            "from_words" => (Builtin::FromWords, 2),
            "with_high_word" => (Builtin::WithHighWord, 2),
            "with_low_word" => (Builtin::WithLowWord, 2),
            "scalbn" => (Builtin::Scalbn, 2),
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            Builtin::Sqrt => "sqrt",
            Builtin::Fabs => "fabs",
            Builtin::Floor => "floor",
            Builtin::Sin => "sin",
            Builtin::Cos => "cos",
            Builtin::Exp => "exp",
            Builtin::Log => "log",
            Builtin::Pow => "pow",
            Builtin::HighWord => "high_word",
            Builtin::LowWord => "low_word",
            Builtin::FromWords => "from_words",
            Builtin::WithHighWord => "with_high_word",
            Builtin::WithLowWord => "with_low_word",
            Builtin::Scalbn => "scalbn",
        }
    }

    /// Applies the builtin — formula-for-formula the interpreter's
    /// `eval_builtin`.
    fn eval(self, a: Slot, b: Slot) -> Slot {
        match self {
            Builtin::Sqrt => Slot::Double(a.as_f64().sqrt()),
            Builtin::Fabs => Slot::Double(a.as_f64().abs()),
            Builtin::Floor => Slot::Double(a.as_f64().floor()),
            Builtin::Sin => Slot::Double(a.as_f64().sin()),
            Builtin::Cos => Slot::Double(a.as_f64().cos()),
            Builtin::Exp => Slot::Double(a.as_f64().exp()),
            Builtin::Log => Slot::Double(a.as_f64().ln()),
            Builtin::Pow => Slot::Double(a.as_f64().powf(b.as_f64())),
            Builtin::HighWord => Slot::Int(i64::from((a.as_f64().to_bits() >> 32) as u32 as i32)),
            Builtin::LowWord => Slot::Int(i64::from(a.as_f64().to_bits() as u32)),
            Builtin::FromWords => {
                let hi = (a.as_i64() as u32 as u64) << 32;
                let lo = b.as_i64() as u32 as u64;
                Slot::Double(f64::from_bits(hi | lo))
            }
            Builtin::WithHighWord => {
                let bits = (a.as_f64().to_bits() & 0x0000_0000_ffff_ffff)
                    | ((b.as_i64() as u32 as u64) << 32);
                Slot::Double(f64::from_bits(bits))
            }
            Builtin::WithLowWord => {
                let bits =
                    (a.as_f64().to_bits() & 0xffff_ffff_0000_0000) | (b.as_i64() as u32 as u64);
                Slot::Double(f64::from_bits(bits))
            }
            Builtin::Scalbn => {
                Slot::Double(a.as_f64() * 2f64.powi(b.as_i64().clamp(-2100, 2100) as i32))
            }
        }
    }
}

/// A straight-line register operation.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    ConstInt {
        dst: u16,
        value: i64,
    },
    ConstDouble {
        dst: u16,
        value: f64,
    },
    Move {
        dst: u16,
        src: u16,
    },
    CoerceInt {
        dst: u16,
        src: u16,
    },
    CoerceDouble {
        dst: u16,
        src: u16,
    },
    Truth {
        dst: u16,
        src: u16,
    },
    Unary {
        op: UnOp,
        dst: u16,
        src: u16,
    },
    Binary {
        op: BinOp,
        dst: u16,
        lhs: u16,
        rhs: u16,
    },
    Builtin {
        which: Builtin,
        dst: u16,
        a: u16,
        b: u16,
    },
}

/// How a basic block hands off control.
#[derive(Debug, Clone, PartialEq)]
enum Term {
    /// Unconditional jump.
    Jump(usize),
    /// An instrumented conditional: report through the context (scalar) or
    /// the pen-code table (lanes), then branch on `op(lhs, rhs)`.
    BranchSite {
        site: u32,
        op: Cmp,
        lhs: u16,
        rhs: u16,
        on_true: usize,
        on_false: usize,
    },
    /// An uninstrumented conditional: branch on truthiness.
    BranchTruth {
        cond: u16,
        on_true: usize,
        on_false: usize,
    },
    /// Call a tape function; execution resumes at `ret` with the result
    /// (coerced per the interpreter's void-call rule) in `dst`.
    Call {
        func: u32,
        args: Vec<u16>,
        dst: Option<u16>,
        ret: usize,
    },
    /// Return from the current frame.
    Return { value: Option<u16> },
    /// Abort the run as a trap (statically-unresolvable call target).
    Trap,
}

/// A basic block: a fused fuel burn, straight-line ops, one terminator.
#[derive(Debug, Clone)]
struct TapeBlock {
    /// Fuel steps the interpreter would burn across this block's ops and
    /// the segment of control flow it models; charged (and checked) once
    /// at the block header.
    cost: u32,
    ops: Vec<Op>,
    term: Term,
}

/// A lowered function: parameter signature plus its slice of the block
/// graph (blocks are globally indexed across the whole tape).
#[derive(Debug, Clone)]
struct TapeFunc {
    name: String,
    params: Vec<Ty>,
    num_regs: u32,
    entry_block: usize,
}

/// Why lowering bailed out. A failed lowering is not a program error —
/// the program transparently stays on the interpreter backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A function needs more than `u16::MAX + 1` virtual registers.
    TooManyRegisters {
        /// The function being lowered.
        function: String,
    },
    /// An expression references a variable with no visible declaration
    /// (unreachable for type-checked modules).
    UnknownVariable {
        /// The function being lowered.
        function: String,
        /// The unresolved name.
        name: String,
    },
    /// A declaration form the tape cannot mirror statically (e.g. a
    /// `void`-typed local, which type checking rejects anyway).
    UnsupportedDecl {
        /// The function being lowered.
        function: String,
        /// The declared name.
        name: String,
    },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::TooManyRegisters { function } => {
                write!(f, "function `{function}` exceeds the tape register budget")
            }
            LowerError::UnknownVariable { function, name } => {
                write!(f, "unknown variable `{name}` in function `{function}`")
            }
            LowerError::UnsupportedDecl { function, name } => {
                write!(
                    f,
                    "unsupported declaration `{name}` in function `{function}`"
                )
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// A compiled FPIR program: flat blocks of register ops with explicit
/// control flow, bit-identical in behavior to the tree-walking
/// interpreter.
#[derive(Debug, Clone)]
pub struct Tape {
    name: String,
    arity: usize,
    num_sites: usize,
    fuel: usize,
    entry: usize,
    funcs: Vec<TapeFunc>,
    blocks: Vec<TapeBlock>,
    /// Per-block straight-line-SoA plans (see [`SoaPlan`]) — derived data
    /// computed from `blocks`, deliberately excluded from the listing and
    /// the fingerprint: the plan never changes semantics, so adding or
    /// improving it must not invalidate corpus warm-start keys.
    soa: Vec<Option<SoaPlan>>,
}

/// A call frame of a tape executor.
#[derive(Debug, Clone, Copy)]
struct Frame {
    base: usize,
    ret_block: usize,
    ret_dst: Option<u16>,
}

impl Tape {
    /// Entry function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of `f64` inputs the entry function takes.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of instrumented sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Step fuel per execution (inherited from the source program).
    pub fn fuel(&self) -> usize {
        self.fuel
    }

    /// Number of lowered functions.
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// Number of basic blocks across all functions.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of blocks the straight-line-SoA compile step vectorized
    /// (diagnostics; divergent/int-typed blocks stay on the scalar walk).
    pub fn num_soa_blocks(&self) -> usize {
        self.soa.iter().filter(|p| p.is_some()).count()
    }

    /// Serializes the tape to its stable textual listing (the same text
    /// [`Display`](std::fmt::Display) produces) — one block per paragraph,
    /// one op per line, suitable for snapshotting and debugging.
    pub fn serialize(&self) -> String {
        self.to_string()
    }

    /// A stable 64-bit fingerprint of the compiled form: FNV-1a over the
    /// serialized listing plus the fuel allowance. This is what
    /// [`Program::fingerprint`](coverme_runtime::Program::fingerprint)
    /// returns for FPIR programs — any semantic edit to the source changes
    /// the lowered tape and therefore the key, so stale corpus entries
    /// never warm-start a changed function. A cache key, not a
    /// cryptographic digest.
    pub fn fingerprint64(&self) -> u64 {
        let mut hash = coverme_runtime::fingerprint_seed();
        hash = coverme_runtime::fingerprint_bytes(hash, self.serialize().as_bytes());
        coverme_runtime::fingerprint_bytes(hash, &(self.fuel as u64).to_le_bytes())
    }

    /// Executes the tape on `input` against `ctx` — the scalar path.
    /// Observably identical to interpreting the source program: branch
    /// reports, coverage, trace, outcome classification and fuel behavior
    /// all match bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`Tape::arity`].
    pub fn execute(&self, input: &[f64], ctx: &mut ExecCtx) {
        assert_eq!(
            input.len(),
            self.arity,
            "tape {} expects {} inputs, got {}",
            self.name,
            self.arity,
            input.len()
        );
        let entry = &self.funcs[self.entry];
        let mut regs: Vec<Slot> = vec![Slot::Double(0.0); entry.num_regs as usize];
        for (reg, &v) in regs.iter_mut().zip(input) {
            *reg = Slot::Double(v);
        }
        let mut frames = vec![Frame {
            base: 0,
            ret_block: usize::MAX,
            ret_dst: None,
        }];
        let mut base = 0usize;
        let mut pc = entry.entry_block;
        let mut steps = 0usize;
        loop {
            let block = &self.blocks[pc];
            steps += block.cost as usize;
            if steps > self.fuel {
                ctx.mark_timeout();
                return;
            }
            for op in &block.ops {
                exec_op(op, base, &mut regs);
            }
            match block.term {
                Term::Jump(target) => pc = target,
                Term::BranchTruth {
                    cond,
                    on_true,
                    on_false,
                } => {
                    pc = if regs[base + cond as usize].truthy() {
                        on_true
                    } else {
                        on_false
                    };
                }
                Term::BranchSite {
                    site,
                    op,
                    lhs,
                    rhs,
                    on_true,
                    on_false,
                } => {
                    let a = regs[base + lhs as usize].as_f64();
                    let b = regs[base + rhs as usize].as_f64();
                    pc = if ctx.branch(site, op, a, b) {
                        on_true
                    } else {
                        on_false
                    };
                }
                Term::Call {
                    func,
                    ref args,
                    dst,
                    ret,
                } => {
                    if frames.len() > MAX_DEPTH {
                        ctx.mark_trap();
                        return;
                    }
                    let callee = &self.funcs[func as usize];
                    let new_base = regs.len();
                    regs.resize(new_base + callee.num_regs as usize, Slot::Double(0.0));
                    for (index, (&arg, &ty)) in args.iter().zip(&callee.params).enumerate() {
                        let value = regs[base + arg as usize].coerce(ty);
                        regs[new_base + index] = value;
                    }
                    frames.push(Frame {
                        base: new_base,
                        ret_block: ret,
                        ret_dst: dst,
                    });
                    base = new_base;
                    pc = callee.entry_block;
                }
                Term::Return { value } => {
                    let result = match value {
                        Some(reg) => regs[base + reg as usize],
                        None => Slot::Double(0.0),
                    };
                    let frame = frames.pop().expect("at least the entry frame");
                    regs.truncate(frame.base);
                    match frames.last() {
                        Some(caller) => {
                            base = caller.base;
                            if let Some(dst) = frame.ret_dst {
                                regs[base + dst as usize] = result;
                            }
                            pc = frame.ret_block;
                        }
                        None => return,
                    }
                }
                Term::Trap => {
                    ctx.mark_trap();
                    return;
                }
            }
        }
    }
}

impl std::fmt::Display for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "tape {} arity={} sites={} fuel={} funcs={} blocks={}",
            self.name,
            self.arity,
            self.num_sites,
            self.fuel,
            self.funcs.len(),
            self.blocks.len()
        )?;
        for (index, func) in self.funcs.iter().enumerate() {
            let params: Vec<String> = func.params.iter().map(|t| t.to_string()).collect();
            writeln!(
                f,
                "fn{index} {}({}) regs={} entry=b{}",
                func.name,
                params.join(","),
                func.num_regs,
                func.entry_block
            )?;
        }
        for (index, block) in self.blocks.iter().enumerate() {
            writeln!(f, "b{index}: cost={}", block.cost)?;
            for op in &block.ops {
                writeln!(f, "  {}", format_op(op))?;
            }
            writeln!(f, "  {}", format_term(&block.term))?;
        }
        Ok(())
    }
}

fn cmp_str(cmp: Cmp) -> &'static str {
    match cmp {
        Cmp::Eq => "eq",
        Cmp::Ne => "ne",
        Cmp::Lt => "lt",
        Cmp::Le => "le",
        Cmp::Gt => "gt",
        Cmp::Ge => "ge",
    }
}

fn bin_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::BitAnd => "and",
        BinOp::BitOr => "or",
        BinOp::BitXor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::Cmp(cmp) => cmp_str(cmp),
        BinOp::LogicalAnd => "land",
        BinOp::LogicalOr => "lor",
    }
}

fn format_op(op: &Op) -> String {
    match *op {
        Op::ConstInt { dst, value } => format!("r{dst} = const.i {value}"),
        Op::ConstDouble { dst, value } => format!("r{dst} = const.f {value:?}"),
        Op::Move { dst, src } => format!("r{dst} = r{src}"),
        Op::CoerceInt { dst, src } => format!("r{dst} = int r{src}"),
        Op::CoerceDouble { dst, src } => format!("r{dst} = double r{src}"),
        Op::Truth { dst, src } => format!("r{dst} = truth r{src}"),
        Op::Unary { op, dst, src } => {
            let name = match op {
                UnOp::Neg => "neg",
                UnOp::BitNot => "bnot",
                UnOp::Not => "not",
            };
            format!("r{dst} = {name} r{src}")
        }
        Op::Binary { op, dst, lhs, rhs } => {
            format!("r{dst} = {} r{lhs}, r{rhs}", bin_str(op))
        }
        Op::Builtin { which, dst, a, b } => {
            format!("r{dst} = {} r{a}, r{b}", which.name())
        }
    }
}

fn format_term(term: &Term) -> String {
    match term {
        Term::Jump(target) => format!("jump b{target}"),
        Term::BranchSite {
            site,
            op,
            lhs,
            rhs,
            on_true,
            on_false,
        } => format!(
            "branch.site s{site} {} r{lhs}, r{rhs} ? b{on_true} : b{on_false}",
            cmp_str(*op)
        ),
        Term::BranchTruth {
            cond,
            on_true,
            on_false,
        } => format!("branch.truth r{cond} ? b{on_true} : b{on_false}"),
        Term::Call {
            func,
            args,
            dst,
            ret,
        } => {
            let args: Vec<String> = args.iter().map(|r| format!("r{r}")).collect();
            let dst = match dst {
                Some(d) => format!("r{d}"),
                None => "_".to_string(),
            };
            format!("{dst} = call fn{func}({}) ret b{ret}", args.join(", "))
        }
        Term::Return { value: Some(reg) } => format!("ret r{reg}"),
        Term::Return { value: None } => "ret".to_string(),
        Term::Trap => "trap".to_string(),
    }
}

/// Applies one straight-line op on the register window at `base`.
#[inline]
fn exec_op(op: &Op, base: usize, regs: &mut [Slot]) {
    match *op {
        Op::ConstInt { dst, value } => regs[base + dst as usize] = Slot::Int(value),
        Op::ConstDouble { dst, value } => regs[base + dst as usize] = Slot::Double(value),
        Op::Move { dst, src } => {
            let v = regs[base + src as usize];
            regs[base + dst as usize] = v;
        }
        Op::CoerceInt { dst, src } => {
            let v = regs[base + src as usize].as_i64();
            regs[base + dst as usize] = Slot::Int(v);
        }
        Op::CoerceDouble { dst, src } => {
            let v = regs[base + src as usize].as_f64();
            regs[base + dst as usize] = Slot::Double(v);
        }
        Op::Truth { dst, src } => {
            let v = regs[base + src as usize].truthy();
            regs[base + dst as usize] = Slot::Int(i64::from(v));
        }
        Op::Unary { op, dst, src } => {
            let v = regs[base + src as usize];
            regs[base + dst as usize] = match op {
                UnOp::Neg => match v {
                    Slot::Int(i) => Slot::Int(i.wrapping_neg()),
                    Slot::Double(d) => Slot::Double(-d),
                },
                UnOp::BitNot => Slot::Int(!v.as_i64()),
                UnOp::Not => Slot::Int(i64::from(!v.truthy())),
            };
        }
        Op::Binary { op, dst, lhs, rhs } => {
            let l = regs[base + lhs as usize];
            let r = regs[base + rhs as usize];
            regs[base + dst as usize] = eval_binary(op, l, r);
        }
        Op::Builtin { which, dst, a, b } => {
            let a = regs[base + a as usize];
            let b = regs[base + b as usize];
            regs[base + dst as usize] = which.eval(a, b);
        }
    }
}

/// Non-short-circuit binary evaluation — arm-for-arm the interpreter's
/// `eval_binary` tail.
fn eval_binary(op: BinOp, l: Slot, r: Slot) -> Slot {
    let both_int = matches!((l, r), (Slot::Int(_), Slot::Int(_)));
    match op {
        BinOp::Add => {
            if both_int {
                Slot::Int(l.as_i64().wrapping_add(r.as_i64()))
            } else {
                Slot::Double(l.as_f64() + r.as_f64())
            }
        }
        BinOp::Sub => {
            if both_int {
                Slot::Int(l.as_i64().wrapping_sub(r.as_i64()))
            } else {
                Slot::Double(l.as_f64() - r.as_f64())
            }
        }
        BinOp::Mul => {
            if both_int {
                Slot::Int(l.as_i64().wrapping_mul(r.as_i64()))
            } else {
                Slot::Double(l.as_f64() * r.as_f64())
            }
        }
        BinOp::Div => {
            if both_int {
                let divisor = r.as_i64();
                if divisor == 0 {
                    Slot::Int(0)
                } else {
                    Slot::Int(l.as_i64().wrapping_div(divisor))
                }
            } else {
                Slot::Double(l.as_f64() / r.as_f64())
            }
        }
        BinOp::Rem => {
            let divisor = r.as_i64();
            if divisor == 0 {
                Slot::Int(0)
            } else {
                Slot::Int(l.as_i64().wrapping_rem(divisor))
            }
        }
        BinOp::BitAnd => Slot::Int(l.as_i64() & r.as_i64()),
        BinOp::BitOr => Slot::Int(l.as_i64() | r.as_i64()),
        BinOp::BitXor => Slot::Int(l.as_i64() ^ r.as_i64()),
        BinOp::Shl => Slot::Int(l.as_i64().wrapping_shl(r.as_i64() as u32 & 63)),
        BinOp::Shr => Slot::Int(l.as_i64().wrapping_shr(r.as_i64() as u32 & 63)),
        BinOp::Cmp(cmp) => {
            let holds = if both_int {
                int_compare(cmp, l.as_i64(), r.as_i64())
            } else {
                cmp.eval(l.as_f64(), r.as_f64())
            };
            Slot::Int(i64::from(holds))
        }
        BinOp::LogicalAnd | BinOp::LogicalOr => {
            unreachable!("short-circuit operators are lowered to control flow")
        }
    }
}

/// One vector operation of a block's straight-line-SoA plan, over SoA
/// virtual registers (columns of the lane scratch buffer). Each op writes
/// a *fresh* vreg strictly greater than every vreg it reads — the SSA-ish
/// discipline that lets the executor split the flat scratch buffer at the
/// destination column.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SoaOp {
    /// Broadcast a constant into every lane.
    Splat { dst: u16, value: f64 },
    /// Lane-wise copy (`Move`/`CoerceDouble` of an already-double value).
    Copy { dst: u16, src: u16 },
    /// Lane-wise IEEE negate.
    Neg { dst: u16, src: u16 },
    /// Lane-wise IEEE arithmetic through the [`simd`] kernels.
    Bin {
        op: VecBin,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// A one-argument `double -> double` builtin, applied per lane (libm
    /// calls do not vectorize; the win is the fused gather around them).
    Call1 { which: Builtin, dst: u16, src: u16 },
    /// `pow`, the only two-argument `double -> double` builtin.
    Call2 { dst: u16, a: u16, b: u16 },
}

/// The straight-line-SoA compile step's per-block artifact: a block whose
/// ops form a pure `double -> double` dataflow (const/move/neg/arith/math
/// builtins — no int-producing op anywhere) gets its op list re-emitted as
/// vector ops over lane columns. At runtime, when two or more live lanes
/// are parked on the block, their registers are gathered into SoA buffers,
/// the vector ops run once for all lanes, and the results scatter back —
/// replacing the op-outer/lane-inner scalar walk and its per-op `Slot` tag
/// dispatch.
///
/// Bit-exactness: every vector op computes exactly the `eval_binary`/
/// `exec_op` double-path formula (IEEE basic ops are correctly rounded;
/// builtins reuse the identical scalar math), and the plan only runs when
/// the runtime gather proves every live-in register holds a `Slot::Double`
/// in every active lane — any `Int` falls the whole block back to the
/// scalar walk. Fuel stays charged at the block header and terminators are
/// untouched, so Timeout-before-Trap classification order is preserved.
#[derive(Debug, Clone)]
struct SoaPlan {
    /// Tape registers read before written, with their gather columns. All
    /// must hold `Slot::Double` at block entry for the plan to run.
    live_in: Vec<(u16, u16)>,
    /// Tape registers the block writes, with the column holding each
    /// register's final value (scattered back as `Slot::Double`).
    writes: Vec<(u16, u16)>,
    ops: Vec<SoaOp>,
    num_vregs: u16,
}

/// Ceiling on a plan's virtual registers, bounding the scratch buffer.
const MAX_SOA_VREGS: usize = 256;

/// Vreg allocation state of [`plan_block`].
struct SoaPlanner {
    /// Current column of each tape register touched so far.
    vreg_of: HashMap<u16, u16>,
    live_in: Vec<(u16, u16)>,
    /// Tape registers written at least once, in first-write order.
    wrote: Vec<u16>,
    ops: Vec<SoaOp>,
    next: u16,
}

impl SoaPlanner {
    fn alloc(&mut self) -> Option<u16> {
        if self.next as usize >= MAX_SOA_VREGS {
            return None;
        }
        let vreg = self.next;
        self.next += 1;
        Some(vreg)
    }

    /// Column holding `reg`'s current value; first read of a block-foreign
    /// register records it as a live-in gather.
    fn read(&mut self, reg: u16) -> Option<u16> {
        if let Some(&vreg) = self.vreg_of.get(&reg) {
            return Some(vreg);
        }
        let vreg = self.alloc()?;
        self.vreg_of.insert(reg, vreg);
        self.live_in.push((reg, vreg));
        Some(vreg)
    }

    /// Fresh column for a write to `reg`.
    fn write(&mut self, reg: u16) -> Option<u16> {
        let vreg = self.alloc()?;
        self.vreg_of.insert(reg, vreg);
        if !self.wrote.contains(&reg) {
            self.wrote.push(reg);
        }
        Some(vreg)
    }
}

/// Attempts to compile one block's op list into a [`SoaPlan`]. Returns
/// `None` — block stays on the scalar walk — when any op can produce an
/// `Int` (consts, coercions, truthiness, comparisons, bit ops, `%`, the
/// word-surgery builtins, `scalbn`'s int exponent), or when the block is
/// too short for the gather/scatter to amortize.
fn plan_block(block: &TapeBlock) -> Option<SoaPlan> {
    // A single op cannot pay for its own gather + scatter.
    if block.ops.len() < 2 {
        return None;
    }
    let mut p = SoaPlanner {
        vreg_of: HashMap::new(),
        live_in: Vec::new(),
        wrote: Vec::new(),
        ops: Vec::new(),
        next: 0,
    };
    for op in &block.ops {
        match *op {
            Op::ConstDouble { dst, value } => {
                let dst = p.write(dst)?;
                p.ops.push(SoaOp::Splat { dst, value });
            }
            // A move of a double is a copy; `double r` of a double is the
            // identity (`as_f64` of `Slot::Double` returns the payload).
            // The gather validation guarantees the double-ness.
            Op::Move { dst, src } | Op::CoerceDouble { dst, src } => {
                let src = p.read(src)?;
                let dst = p.write(dst)?;
                p.ops.push(SoaOp::Copy { dst, src });
            }
            Op::Unary {
                op: UnOp::Neg,
                dst,
                src,
            } => {
                let src = p.read(src)?;
                let dst = p.write(dst)?;
                p.ops.push(SoaOp::Neg { dst, src });
            }
            Op::Binary { op, dst, lhs, rhs } => {
                let op = match op {
                    BinOp::Add => VecBin::Add,
                    BinOp::Sub => VecBin::Sub,
                    BinOp::Mul => VecBin::Mul,
                    BinOp::Div => VecBin::Div,
                    // Rem, comparisons, bit ops, shifts produce Ints.
                    _ => return None,
                };
                let a = p.read(lhs)?;
                let b = p.read(rhs)?;
                let dst = p.write(dst)?;
                p.ops.push(SoaOp::Bin { op, dst, a, b });
            }
            Op::Builtin { which, dst, a, b } => match which {
                Builtin::Sqrt
                | Builtin::Fabs
                | Builtin::Floor
                | Builtin::Sin
                | Builtin::Cos
                | Builtin::Exp
                | Builtin::Log => {
                    let src = p.read(a)?;
                    let dst = p.write(dst)?;
                    p.ops.push(SoaOp::Call1 { which, dst, src });
                }
                Builtin::Pow => {
                    let a = p.read(a)?;
                    let b = p.read(b)?;
                    let dst = p.write(dst)?;
                    p.ops.push(SoaOp::Call2 { dst, a, b });
                }
                // Word surgery consumes/produces Ints; scalbn's exponent
                // goes through `as_i64`.
                _ => return None,
            },
            // ConstInt / CoerceInt / Truth / BitNot / Not produce Ints.
            _ => return None,
        }
    }
    let writes: Vec<(u16, u16)> = p.wrote.iter().map(|&reg| (reg, p.vreg_of[&reg])).collect();
    Some(SoaPlan {
        live_in: p.live_in,
        writes,
        ops: p.ops,
        num_vregs: p.next,
    })
}

/// Column offset of a vreg in the flat SoA scratch buffer.
#[inline(always)]
fn soa_col(vreg: u16) -> usize {
    vreg as usize * LANE_WIDTH
}

/// Reusable flat lane buffer for [`SoaPlan`] execution: `num_vregs`
/// columns of [`LANE_WIDTH`] doubles.
#[derive(Debug, Clone, Default)]
struct SoaScratch {
    buf: Vec<f64>,
}

impl SoaScratch {
    fn ensure(&mut self, num_vregs: u16) {
        let need = num_vregs as usize * LANE_WIDTH;
        if self.buf.len() < need {
            self.buf.resize(need, 0.0);
        }
    }

    /// Runs the plan's vector ops over the first `lanes` slots of each
    /// column. Every op's destination column sits strictly above its
    /// sources, so splitting the buffer at the destination is safe.
    fn run(&mut self, plan: &SoaPlan, isa: SimdIsa, lanes: usize) {
        for op in &plan.ops {
            match *op {
                SoaOp::Splat { dst, value } => {
                    let d = soa_col(dst);
                    self.buf[d..d + lanes].fill(value);
                }
                SoaOp::Copy { dst, src } => {
                    let (d, s) = (soa_col(dst), soa_col(src));
                    let (head, tail) = self.buf.split_at_mut(d);
                    tail[..lanes].copy_from_slice(&head[s..s + lanes]);
                }
                SoaOp::Neg { dst, src } => {
                    let (d, s) = (soa_col(dst), soa_col(src));
                    let (head, tail) = self.buf.split_at_mut(d);
                    simd::vec_neg(isa, &head[s..s + lanes], &mut tail[..lanes]);
                }
                SoaOp::Bin { op, dst, a, b } => {
                    let (d, ca, cb) = (soa_col(dst), soa_col(a), soa_col(b));
                    let (head, tail) = self.buf.split_at_mut(d);
                    simd::vec_bin(
                        isa,
                        op,
                        &head[ca..ca + lanes],
                        &head[cb..cb + lanes],
                        &mut tail[..lanes],
                    );
                }
                SoaOp::Call1 { which, dst, src } => {
                    let (d, s) = (soa_col(dst), soa_col(src));
                    let (head, tail) = self.buf.split_at_mut(d);
                    let src = &head[s..s + lanes];
                    let out = &mut tail[..lanes];
                    // Formula-for-formula `Builtin::eval`'s double paths.
                    for k in 0..lanes {
                        out[k] = match which {
                            Builtin::Sqrt => src[k].sqrt(),
                            Builtin::Fabs => src[k].abs(),
                            Builtin::Floor => src[k].floor(),
                            Builtin::Sin => src[k].sin(),
                            Builtin::Cos => src[k].cos(),
                            Builtin::Exp => src[k].exp(),
                            Builtin::Log => src[k].ln(),
                            _ => unreachable!("planner admits double->double builtins only"),
                        };
                    }
                }
                SoaOp::Call2 { dst, a, b } => {
                    let (d, ca, cb) = (soa_col(dst), soa_col(a), soa_col(b));
                    let (head, tail) = self.buf.split_at_mut(d);
                    let (a, b) = (&head[ca..ca + lanes], &head[cb..cb + lanes]);
                    let out = &mut tail[..lanes];
                    for k in 0..lanes {
                        out[k] = a[k].powf(b[k]);
                    }
                }
            }
        }
    }
}

/// Lowers an instrumented program to its instruction tape.
///
/// # Errors
///
/// Returns a [`LowerError`] when the module uses something the tape cannot
/// mirror statically (see the variant docs); callers should treat that as
/// "stay on the interpreter", not as a failure.
pub fn lower(program: &IrProgram) -> Result<Tape, LowerError> {
    let inst = program.instrumented();
    let module = &inst.module;
    let mut func_ids: HashMap<&str, u32> = HashMap::new();
    for (index, func) in module.functions.iter().enumerate() {
        // Keep the first occurrence: `Module::function` resolves by first
        // match, so duplicate names (rejected upstream anyway) must not
        // rebind to a later definition.
        func_ids.entry(func.name.as_str()).or_insert(index as u32);
    }
    let mut blocks = Vec::new();
    let mut funcs = Vec::with_capacity(module.functions.len());
    for func in &module.functions {
        let lowered = FuncLowerer::lower_function(module, &func_ids, func, &mut blocks)?;
        funcs.push(lowered);
    }
    let entry = func_ids[inst.entry.as_str()] as usize;
    // The straight-line-SoA compile step: derived per-block vector plans.
    // Computed last so it sees the final block graph; never serialized, so
    // the listing and fingerprint (corpus keys!) are unaffected.
    let soa: Vec<Option<SoaPlan>> = blocks.iter().map(plan_block).collect();
    Ok(Tape {
        name: inst.entry.clone(),
        arity: program.arity(),
        num_sites: inst.num_sites(),
        fuel: program.fuel(),
        entry,
        funcs,
        blocks,
        soa,
    })
}

/// Per-function lowering state.
struct FuncLowerer<'m, 'b> {
    func_name: &'m str,
    func_ids: &'b HashMap<&'m str, u32>,
    blocks: &'b mut Vec<TapeBlock>,
    /// Flat lexically-scoped symbol stack: name, register, declared type.
    symbols: Vec<(&'m str, u16, Ty)>,
    scopes: Vec<usize>,
    next_reg: u32,
    current: usize,
}

impl<'m, 'b> FuncLowerer<'m, 'b> {
    fn lower_function(
        _module: &'m Module,
        func_ids: &'b HashMap<&'m str, u32>,
        func: &'m crate::ast::FunctionDef,
        blocks: &'b mut Vec<TapeBlock>,
    ) -> Result<TapeFunc, LowerError> {
        let entry_block = blocks.len();
        blocks.push(TapeBlock {
            cost: 0,
            ops: Vec::new(),
            term: Term::Return { value: None },
        });
        let mut lowerer = FuncLowerer {
            func_name: &func.name,
            func_ids,
            blocks,
            symbols: Vec::new(),
            scopes: Vec::new(),
            next_reg: 0,
            current: entry_block,
        };
        for param in &func.params {
            let reg = lowerer.alloc_reg()?;
            lowerer.symbols.push((&param.name, reg, param.ty));
        }
        lowerer.lower_ast_block(&func.body)?;
        // Falling off the end of a function returns "no value" (the caller
        // substitutes 0.0), exactly like the interpreter's `Flow::Normal`.
        lowerer.terminate(Term::Return { value: None });
        Ok(TapeFunc {
            name: func.name.clone(),
            params: func.params.iter().map(|p| p.ty).collect(),
            num_regs: lowerer.next_reg,
            entry_block,
        })
    }

    fn alloc_reg(&mut self) -> Result<u16, LowerError> {
        if self.next_reg > u16::MAX as u32 {
            return Err(LowerError::TooManyRegisters {
                function: self.func_name.to_string(),
            });
        }
        let reg = self.next_reg as u16;
        self.next_reg += 1;
        Ok(reg)
    }

    fn new_block(&mut self) -> usize {
        let id = self.blocks.len();
        self.blocks.push(TapeBlock {
            cost: 0,
            ops: Vec::new(),
            // Placeholder; overwritten by `terminate`. An unterminated
            // unreachable block (after a `return`) keeps this harmless
            // no-value return.
            term: Term::Return { value: None },
        });
        id
    }

    fn emit(&mut self, op: Op) {
        self.blocks[self.current].ops.push(op);
    }

    /// Adds interpreter fuel burns to the current block's header charge.
    fn add_cost(&mut self, steps: u32) {
        self.blocks[self.current].cost += steps;
    }

    fn terminate(&mut self, term: Term) {
        self.blocks[self.current].term = term;
    }

    fn lookup(&self, name: &str) -> Option<(u16, Ty)> {
        self.symbols
            .iter()
            .rev()
            .find(|(n, _, _)| *n == name)
            .map(|&(_, reg, ty)| (reg, ty))
    }

    fn emit_coerce(&mut self, ty: Ty, dst: u16, src: u16) {
        match ty {
            Ty::Int => self.emit(Op::CoerceInt { dst, src }),
            Ty::Double => self.emit(Op::CoerceDouble { dst, src }),
            Ty::Void => self.emit(Op::Move { dst, src }),
        }
    }

    fn lower_ast_block(&mut self, block: &'m AstBlock) -> Result<(), LowerError> {
        self.scopes.push(self.symbols.len());
        for stmt in &block.stmts {
            self.lower_stmt(stmt)?;
        }
        let start = self.scopes.pop().expect("scope underflow");
        self.symbols.truncate(start);
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &'m Stmt) -> Result<(), LowerError> {
        // `exec_stmt` burns one step on entry, before dispatch.
        self.add_cost(1);
        match stmt {
            Stmt::Decl { ty, name, init, .. } => {
                let slot_ty = match ty {
                    Ty::Int => Ty::Int,
                    Ty::Double => Ty::Double,
                    Ty::Void => {
                        return Err(LowerError::UnsupportedDecl {
                            function: self.func_name.to_string(),
                            name: name.clone(),
                        })
                    }
                };
                let dst = self.alloc_reg()?;
                match init {
                    Some(init) => {
                        let value = self.lower_expr(init)?;
                        self.emit_coerce(slot_ty, dst, value);
                    }
                    None => {
                        // No initializer: no eval burn, zero of the
                        // declared representation.
                        match slot_ty {
                            Ty::Int => self.emit(Op::ConstInt { dst, value: 0 }),
                            _ => self.emit(Op::ConstDouble { dst, value: 0.0 }),
                        }
                    }
                }
                self.symbols.push((name, dst, slot_ty));
                Ok(())
            }
            Stmt::Assign { name, value, .. } => {
                let v = self.lower_expr(value)?;
                let Some((reg, ty)) = self.lookup(name) else {
                    return Err(LowerError::UnknownVariable {
                        function: self.func_name.to_string(),
                        name: name.clone(),
                    });
                };
                // The interpreter coerces to the slot's current tag, which
                // (invariantly, post-typecheck) is the declared type.
                self.emit_coerce(ty, reg, v);
                Ok(())
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                site,
                ..
            } => {
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.lower_condition(cond, *site, then_bb, else_bb)?;
                self.current = then_bb;
                self.lower_ast_block(then_block)?;
                self.terminate(Term::Jump(join));
                self.current = else_bb;
                if let Some(else_block) = else_block {
                    self.lower_ast_block(else_block)?;
                }
                self.terminate(Term::Jump(join));
                self.current = join;
                Ok(())
            }
            Stmt::While {
                cond, body, site, ..
            } => {
                let head = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Term::Jump(head));
                self.current = head;
                self.lower_condition(cond, *site, body_bb, exit)?;
                self.current = body_bb;
                self.lower_ast_block(body)?;
                // The interpreter burns one latch step after each completed
                // body iteration, before re-evaluating the condition. The
                // stretch from here to the head's branch is observable-free,
                // so folding the burn into the back-edge block's header is
                // exact.
                self.add_cost(1);
                self.terminate(Term::Jump(head));
                self.current = exit;
                Ok(())
            }
            Stmt::Return { value, .. } => {
                let reg = match value {
                    Some(expr) => Some(self.lower_expr(expr)?),
                    None => None,
                };
                self.terminate(Term::Return { value: reg });
                // Anything lowered after a return lands in an unreachable
                // continuation block.
                self.current = self.new_block();
                Ok(())
            }
            Stmt::ExprStmt { expr, .. } => {
                self.lower_expr(expr)?;
                Ok(())
            }
        }
    }

    /// Lowers a conditional's condition into the current block(s) and
    /// terminates with the branch. Mirrors `eval_condition`: instrumented
    /// comparisons burn only their operand subtrees and report through the
    /// site; everything else evaluates the full expression and branches on
    /// truthiness.
    fn lower_condition(
        &mut self,
        cond: &'m Expr,
        site: Option<u32>,
        on_true: usize,
        on_false: usize,
    ) -> Result<(), LowerError> {
        if let (Some(site), Some((op, lhs, rhs))) = (site, as_comparison(cond)) {
            let lhs = self.lower_expr(lhs)?;
            let rhs = self.lower_expr(rhs)?;
            self.terminate(Term::BranchSite {
                site,
                op,
                lhs,
                rhs,
                on_true,
                on_false,
            });
        } else {
            let cond = self.lower_expr(cond)?;
            self.terminate(Term::BranchTruth {
                cond,
                on_true,
                on_false,
            });
        }
        Ok(())
    }

    /// Lowers an expression, returning the register holding its value.
    /// Charges the interpreter's one-burn-per-node pre-order accounting as
    /// it goes.
    fn lower_expr(&mut self, expr: &'m Expr) -> Result<u16, LowerError> {
        self.add_cost(1);
        match expr {
            Expr::Int(value) => {
                let dst = self.alloc_reg()?;
                self.emit(Op::ConstInt { dst, value: *value });
                Ok(dst)
            }
            Expr::Float(value) => {
                let dst = self.alloc_reg()?;
                self.emit(Op::ConstDouble { dst, value: *value });
                Ok(dst)
            }
            Expr::Var(name) => match self.lookup(name) {
                // Reading a variable is just its register: the language has
                // no assignment expressions, so nothing can clobber the
                // register between this read and the consuming op.
                Some((reg, _)) => Ok(reg),
                None => Err(LowerError::UnknownVariable {
                    function: self.func_name.to_string(),
                    name: name.clone(),
                }),
            },
            Expr::Unary { op, expr } => {
                let src = self.lower_expr(expr)?;
                let dst = self.alloc_reg()?;
                self.emit(Op::Unary { op: *op, dst, src });
                Ok(dst)
            }
            Expr::Cast { ty, expr } => {
                let src = self.lower_expr(expr)?;
                let dst = self.alloc_reg()?;
                self.emit_coerce(*ty, dst, src);
                Ok(dst)
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::LogicalAnd => self.lower_logical(lhs, rhs, true),
                BinOp::LogicalOr => self.lower_logical(lhs, rhs, false),
                _ => {
                    let l = self.lower_expr(lhs)?;
                    let r = self.lower_expr(rhs)?;
                    let dst = self.alloc_reg()?;
                    self.emit(Op::Binary {
                        op: *op,
                        dst,
                        lhs: l,
                        rhs: r,
                    });
                    Ok(dst)
                }
            },
            Expr::Call { name, args } => self.lower_call(name, args),
        }
    }

    /// Lowers `&&` / `||` to control flow so the right operand's burns (and
    /// effects) happen exactly when the interpreter would evaluate it.
    fn lower_logical(
        &mut self,
        lhs: &'m Expr,
        rhs: &'m Expr,
        is_and: bool,
    ) -> Result<u16, LowerError> {
        let l = self.lower_expr(lhs)?;
        let dst = self.alloc_reg()?;
        let rhs_bb = self.new_block();
        let short_bb = self.new_block();
        let join = self.new_block();
        let (on_true, on_false) = if is_and {
            (rhs_bb, short_bb)
        } else {
            (short_bb, rhs_bb)
        };
        self.terminate(Term::BranchTruth {
            cond: l,
            on_true,
            on_false,
        });
        self.current = rhs_bb;
        let r = self.lower_expr(rhs)?;
        self.emit(Op::Truth { dst, src: r });
        self.terminate(Term::Jump(join));
        self.current = short_bb;
        self.emit(Op::ConstInt {
            dst,
            value: i64::from(!is_and),
        });
        self.terminate(Term::Jump(join));
        self.current = join;
        Ok(dst)
    }

    fn lower_call(&mut self, name: &'m str, args: &'m [Expr]) -> Result<u16, LowerError> {
        let mut arg_regs = Vec::with_capacity(args.len());
        for arg in args {
            arg_regs.push(self.lower_expr(arg)?);
        }
        // Builtins shadow user functions, exactly like the interpreter's
        // `eval_builtin`-first dispatch.
        if let Some((which, builtin_arity)) = Builtin::from_name(name) {
            if args.len() >= builtin_arity {
                let dst = self.alloc_reg()?;
                let a = arg_regs[0];
                let b = if builtin_arity > 1 { arg_regs[1] } else { a };
                self.emit(Op::Builtin { which, dst, a, b });
                return Ok(dst);
            }
            // Under-applied builtin: the interpreter would panic indexing
            // the argument slice; type checking rejects this, so refuse to
            // lower rather than invent a behavior.
            return Err(LowerError::UnknownVariable {
                function: self.func_name.to_string(),
                name: name.to_string(),
            });
        }
        let dst = self.alloc_reg()?;
        match self.func_ids.get(name) {
            Some(&func) => {
                let ret = self.new_block();
                self.terminate(Term::Call {
                    func,
                    args: arg_regs,
                    dst: Some(dst),
                    ret,
                });
                self.current = ret;
            }
            None => {
                // Unknown call target: arguments evaluate (and burn), then
                // the run traps — the interpreter's exact order.
                self.terminate(Term::Trap);
                self.current = self.new_block();
            }
        }
        Ok(dst)
    }
}

/// One lane of the batched tape executor: an independent virtual machine
/// with its own program counter, frames and registers, plus the lane's
/// pending deferred-penalty event.
#[derive(Debug, Clone)]
struct LaneVm {
    pc: usize,
    base: usize,
    steps: usize,
    alive: bool,
    outcome: RunOutcome,
    regs: Vec<Slot>,
    frames: Vec<Frame>,
    pend_code: u8,
    pend_op: Cmp,
    pend_lhs: f64,
    pend_rhs: f64,
}

impl LaneVm {
    fn new() -> LaneVm {
        LaneVm {
            pc: 0,
            base: 0,
            steps: 0,
            alive: false,
            outcome: RunOutcome::Done,
            regs: Vec::new(),
            frames: Vec::new(),
            pend_code: pen_code::IDLE,
            pend_op: Cmp::Eq,
            pend_lhs: 0.0,
            pend_rhs: 0.0,
        }
    }

    fn reset(&mut self, tape: &Tape, input: &[f64]) {
        let entry = &tape.funcs[tape.entry];
        self.regs.clear();
        self.regs.resize(entry.num_regs as usize, Slot::Double(0.0));
        for (reg, &v) in self.regs.iter_mut().zip(input) {
            *reg = Slot::Double(v);
        }
        self.frames.clear();
        self.frames.push(Frame {
            base: 0,
            ret_block: usize::MAX,
            ret_dst: None,
        });
        self.base = 0;
        self.pc = entry.entry_block;
        self.steps = 0;
        self.alive = true;
        self.outcome = RunOutcome::Done;
        self.pend_code = pen_code::IDLE;
        self.pend_op = Cmp::Eq;
        self.pend_lhs = 0.0;
        self.pend_rhs = 0.0;
    }

    /// Applies a block terminator to this lane.
    fn step_term(&mut self, tape: &Tape, pen_codes: &[u8], term: &Term) {
        match *term {
            Term::Jump(target) => self.pc = target,
            Term::BranchTruth {
                cond,
                on_true,
                on_false,
            } => {
                self.pc = if self.regs[self.base + cond as usize].truthy() {
                    on_true
                } else {
                    on_false
                };
            }
            Term::BranchSite {
                site,
                op,
                lhs,
                rhs,
                on_true,
                on_false,
            } => {
                let a = self.regs[self.base + lhs as usize].as_f64();
                let b = self.regs[self.base + rhs as usize].as_f64();
                // The deferred-context protocol: a fully-saturated (KEEP)
                // site cannot change the accumulator, every other code
                // overwrites the pending event.
                let code = pen_codes
                    .get(site as usize)
                    .copied()
                    .unwrap_or(pen_code::OPEN);
                if code != pen_code::KEEP {
                    self.pend_code = code;
                    self.pend_op = op;
                    self.pend_lhs = a;
                    self.pend_rhs = b;
                }
                self.pc = if op.eval(a, b) { on_true } else { on_false };
            }
            Term::Call {
                func,
                ref args,
                dst,
                ret,
            } => {
                if self.frames.len() > MAX_DEPTH {
                    self.alive = false;
                    self.outcome = RunOutcome::Trap;
                    return;
                }
                let callee = &tape.funcs[func as usize];
                let new_base = self.regs.len();
                self.regs
                    .resize(new_base + callee.num_regs as usize, Slot::Double(0.0));
                for (index, (&arg, &ty)) in args.iter().zip(&callee.params).enumerate() {
                    let value = self.regs[self.base + arg as usize].coerce(ty);
                    self.regs[new_base + index] = value;
                }
                self.frames.push(Frame {
                    base: new_base,
                    ret_block: ret,
                    ret_dst: dst,
                });
                self.base = new_base;
                self.pc = callee.entry_block;
            }
            Term::Return { value } => {
                let result = match value {
                    Some(reg) => self.regs[self.base + reg as usize],
                    None => Slot::Double(0.0),
                };
                let frame = self.frames.pop().expect("at least the entry frame");
                self.regs.truncate(frame.base);
                match self.frames.last() {
                    Some(caller) => {
                        self.base = caller.base;
                        if let Some(dst) = frame.ret_dst {
                            self.regs[self.base + dst as usize] = result;
                        }
                        self.pc = frame.ret_block;
                    }
                    None => self.alive = false,
                }
            }
            Term::Trap => {
                self.alive = false;
                self.outcome = RunOutcome::Trap;
            }
        }
    }
}

/// Gathers a plan's live-in registers from the active lanes into the SoA
/// scratch, runs the vector ops, and scatters the written registers back.
/// Returns `false` — without touching any register — when a live-in holds
/// an `Int` in any lane; the caller then runs the scalar walk.
fn run_block_soa(
    plan: &SoaPlan,
    isa: SimdIsa,
    scratch: &mut SoaScratch,
    vms: &mut [LaneVm],
    active: &[usize],
) -> bool {
    scratch.ensure(plan.num_vregs);
    let lanes = active.len();
    for &(reg, vreg) in &plan.live_in {
        let column = soa_col(vreg);
        for (slot, &index) in active.iter().enumerate() {
            let vm = &vms[index];
            match vm.regs[vm.base + reg as usize] {
                Slot::Double(v) => scratch.buf[column + slot] = v,
                Slot::Int(_) => return false,
            }
        }
    }
    scratch.run(plan, isa, lanes);
    for &(reg, vreg) in &plan.writes {
        let column = soa_col(vreg);
        for (slot, &index) in active.iter().enumerate() {
            let vm = &mut vms[index];
            let base = vm.base;
            vm.regs[base + reg as usize] = Slot::Double(scratch.buf[column + slot]);
        }
    }
    true
}

/// Runs a chunk of lanes to completion. Each scheduling round picks the
/// lowest live program counter and advances every lane parked on that
/// block together: the fuel charge, then the block body — through the
/// block's [`SoaPlan`] vector ops when two or more lanes are parked here
/// and every live-in register is a double, through the scalar op-outer/
/// lane-inner walk otherwise — then the terminator per lane. Lanes whose
/// paths diverge simply wait their turn; lanes on the same path stay in
/// lockstep the whole run.
fn run_lane_chunk(
    tape: &Tape,
    pen_codes: &[u8],
    vms: &mut [LaneVm],
    isa: SimdIsa,
    scratch: &mut SoaScratch,
) {
    // The round's active-lane set, built once so the op-outer loop touches
    // only the lanes actually parked on this block — when lanes diverge
    // (data-dependent loop trip counts), rescanning every lane per op is
    // what ate the lockstep advantage.
    debug_assert!(vms.len() <= LANE_WIDTH);
    let mut active = [0usize; LANE_WIDTH];
    loop {
        let mut next: Option<usize> = None;
        for vm in vms.iter() {
            if vm.alive {
                next = Some(next.map_or(vm.pc, |pc| pc.min(vm.pc)));
            }
        }
        let Some(pc) = next else { break };
        let block = &tape.blocks[pc];
        // Fuel first (a lane that times out here must not run the ops),
        // then collect the survivors.
        let mut live = 0;
        for (index, vm) in vms.iter_mut().enumerate() {
            if vm.alive && vm.pc == pc {
                vm.steps += block.cost as usize;
                if vm.steps > tape.fuel {
                    vm.alive = false;
                    vm.outcome = RunOutcome::Timeout;
                } else {
                    active[live] = index;
                    live += 1;
                }
            }
        }
        let ran_soa = live >= 2
            && tape.soa[pc]
                .as_ref()
                .is_some_and(|plan| run_block_soa(plan, isa, scratch, vms, &active[..live]));
        if !ran_soa {
            for op in &block.ops {
                for &index in &active[..live] {
                    let vm = &mut vms[index];
                    exec_op(op, vm.base, &mut vm.regs);
                }
            }
        }
        for &index in &active[..live] {
            vms[index].step_term(tape, pen_codes, &block.term);
        }
    }
}

/// The compiled execution backend for FPIR programs: scalar evaluations
/// run the tape against the caller's [`ExecCtx`], batched evaluations run
/// [`LANE_WIDTH`] tape VMs in lockstep and finalize the deferred penalties
/// through the SIMD kernels. Installed automatically by
/// [`IrProgram`]'s [`Program::backend`] under
/// [`BackendMode::Auto`]/[`BackendMode::Tape`].
#[derive(Debug, Clone)]
pub struct TapeBackend {
    tape: Arc<Tape>,
    epsilon: f64,
    /// The SIMD ISA the block kernels and the finalize dispatch to.
    isa: SimdIsa,
    /// Effective lane count per chunk (`isa.lane_width()`, cached).
    width: usize,
    pen_codes: Vec<u8>,
    vms: Vec<LaneVm>,
    /// Lane buffer for the straight-line-SoA block kernels.
    soa_scratch: SoaScratch,
    // SoA scratch for the finalize kernels.
    codes: Vec<u8>,
    ops: Vec<Cmp>,
    lhs: Vec<f64>,
    rhs: Vec<f64>,
    values: Vec<f64>,
}

impl TapeBackend {
    /// Wraps a lowered tape with default (unset) tuning; the objective
    /// engine injects `ε` and the saturation snapshot on installation.
    pub fn new(tape: Tape) -> TapeBackend {
        let isa = SimdIsa::active();
        TapeBackend {
            tape: Arc::new(tape),
            epsilon: coverme_runtime::DEFAULT_EPSILON,
            isa,
            width: isa.lane_width(),
            pen_codes: Vec::new(),
            vms: Vec::new(),
            soa_scratch: SoaScratch::default(),
            codes: Vec::new(),
            ops: Vec::new(),
            lhs: Vec::new(),
            rhs: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The tape this backend executes.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }
}

impl ExecBackend for TapeBackend {
    fn name(&self) -> &'static str {
        "tape"
    }

    fn simd_isa(&self) -> SimdIsa {
        self.isa
    }

    fn set_simd(&mut self, isa: SimdIsa) {
        assert!(isa.is_supported(), "SIMD ISA {isa} unsupported here");
        self.isa = isa;
        self.width = isa.lane_width();
    }

    fn set_epsilon(&mut self, epsilon: f64) {
        self.epsilon = epsilon;
    }

    fn retarget(&mut self, saturated: &BranchSet) {
        self.pen_codes = pen_code_table(saturated);
    }

    fn run(&mut self, _program: &dyn Program, input: &[f64], ctx: &mut ExecCtx) {
        self.tape.execute(input, ctx);
    }

    fn run_lanes(
        &mut self,
        _program: &dyn Program,
        points: &[Vec<f64>],
        indices: &[usize],
        out: &mut Vec<LaneEval>,
    ) {
        out.reserve(indices.len());
        if self.vms.len() < self.width {
            self.vms.resize_with(self.width, LaneVm::new);
        }
        for chunk in indices.chunks(self.width) {
            let lanes = chunk.len();
            let tape = Arc::clone(&self.tape);
            for (vm, &index) in self.vms[..lanes].iter_mut().zip(chunk) {
                vm.reset(&tape, &points[index]);
            }
            run_lane_chunk(
                &tape,
                &self.pen_codes,
                &mut self.vms[..lanes],
                self.isa,
                &mut self.soa_scratch,
            );
            self.codes.clear();
            self.ops.clear();
            self.lhs.clear();
            self.rhs.clear();
            for vm in &self.vms[..lanes] {
                self.codes.push(vm.pend_code);
                self.ops.push(vm.pend_op);
                self.lhs.push(vm.pend_lhs);
                self.rhs.push(vm.pend_rhs);
            }
            self.values.clear();
            resolve_pen_lanes_with(
                self.isa,
                &self.codes,
                &self.ops,
                &self.lhs,
                &self.rhs,
                self.epsilon,
                &mut self.values,
            );
            for (vm, &value) in self.vms[..lanes].iter().zip(&self.values) {
                out.push(LaneEval {
                    value,
                    outcome: vm.outcome,
                });
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ExecBackend> {
        Box::new(self.clone())
    }
}

/// Builds the backend [`IrProgram::backend`] hands out: `None` for
/// [`BackendMode::Interp`], the lowered tape for `Auto`/`Tape` (or `None`
/// when lowering bails, which transparently keeps the interpreter).
pub(crate) fn program_backend(
    program: &IrProgram,
    mode: BackendMode,
) -> Option<Box<dyn ExecBackend>> {
    match mode {
        BackendMode::Interp => None,
        BackendMode::Auto | BackendMode::Tape => lower(program)
            .ok()
            .map(|tape| Box::new(TapeBackend::new(tape)) as Box<dyn ExecBackend>),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use coverme_runtime::{BranchId, InterpBackend, DEFAULT_EPSILON};

    /// Runs `program` both ways on `input` in observe mode and asserts the
    /// full observable state matches: coverage, trace, outcome.
    fn assert_observably_equal(program: &IrProgram, input: &[f64]) {
        let tape = lower(program).expect("lowers");
        let mut interp_ctx = ExecCtx::observe();
        program.execute(input, &mut interp_ctx);
        let mut tape_ctx = ExecCtx::observe();
        tape.execute(input, &mut tape_ctx);
        assert_eq!(
            tape_ctx.run_outcome(),
            interp_ctx.run_outcome(),
            "outcome diverged on {input:?}"
        );
        let interp_cov: Vec<BranchId> = interp_ctx.covered().iter().collect();
        let tape_cov: Vec<BranchId> = tape_ctx.covered().iter().collect();
        assert_eq!(tape_cov, interp_cov, "coverage diverged on {input:?}");
        assert_eq!(
            format!("{:?}", tape_ctx.trace()),
            format!("{:?}", interp_ctx.trace()),
            "trace diverged on {input:?}"
        );
    }

    #[test]
    fn tape_matches_interpreter_on_arithmetic_and_calls() {
        let p = compile(
            r#"
            double square(double x) { return x * x; }
            double f(double x) {
                double y = square(x) + 1.0;
                if (y >= 5.0) { return y; }
                return -y;
            }
            "#,
            "f",
        )
        .unwrap();
        for v in [-3.0, -1.0, 0.0, 1.0, 2.0, 4.5, f64::NAN, f64::INFINITY] {
            assert_observably_equal(&p, &[v]);
        }
    }

    #[test]
    fn tape_matches_interpreter_on_loops_and_bit_builtins() {
        let p = compile(
            r#"
            double f(double x) {
                int hx = high_word(x) & 0x7fffffff;
                double acc = 0.0;
                int i = 0;
                while (i < 6) {
                    acc = acc + scalbn(x, i % 3);
                    i = i + 1;
                }
                if (hx >= 0x7ff00000) { return acc; }
                if (acc != 0.0 && x > 0.5) { return acc * 2.0; }
                return from_words(hx, low_word(acc));
            }
            "#,
            "f",
        )
        .unwrap();
        for v in [0.0, 0.3, 0.7, -2.5, 1e300, f64::NAN, f64::INFINITY, 5e-324] {
            assert_observably_equal(&p, &[v]);
        }
    }

    #[test]
    fn tape_preserves_timeout_and_trap_classification() {
        let spin = compile(
            "double f(double x) { while (x > 0.0) { x = x + 1.0; } return x; }",
            "f",
        )
        .unwrap();
        assert_observably_equal(&spin, &[1.0]);
        assert_observably_equal(&spin, &[-1.0]);
        // Same program, starved fuel: the exact step where the budget trips
        // must classify identically.
        let starved = spin.with_fuel(17);
        assert_observably_equal(&starved, &[1.0]);

        let recurse = compile(
            "double f(double x) { if (x > 0.0) { return f(x); } return x; }",
            "f",
        )
        .unwrap();
        assert_observably_equal(&recurse, &[1.0]);
        assert_observably_equal(&recurse, &[-1.0]);
    }

    #[test]
    fn tape_representing_values_are_bit_identical() {
        let p = compile(
            r#"
            double f(double x) {
                if (x <= 1.0) { x = x + 2.5; }
                double y = x * x;
                if (y == 4.0) { return 1.0; }
                return 0.0;
            }
            "#,
            "f",
        )
        .unwrap();
        let tape = lower(&p).unwrap();
        let saturated: BranchSet = [BranchId::false_of(1)].into_iter().collect();
        for i in 0..40 {
            let input = [i as f64 * 0.37 - 6.0];
            let mut interp_ctx = ExecCtx::representing(saturated.clone());
            p.execute(&input, &mut interp_ctx);
            let mut tape_ctx = ExecCtx::representing(saturated.clone());
            tape.execute(&input, &mut tape_ctx);
            assert_eq!(
                tape_ctx.representing_value().to_bits(),
                interp_ctx.representing_value().to_bits(),
                "representing value diverged on {input:?}"
            );
        }
    }

    #[test]
    fn lane_backend_matches_the_interp_backend_bit_for_bit() {
        let p = compile(
            r#"
            double helper(double a, int k) { return scalbn(a, k) - 1.0; }
            double f(double x) {
                double y = helper(x, 2);
                if (y <= 1.0) { y = y + 2.5; }
                if (y * y == 4.0) { return 1.0; }
                return y;
            }
            "#,
            "f",
        )
        .unwrap();
        let saturated: BranchSet = [BranchId::false_of(0), BranchId::true_of(0)]
            .into_iter()
            .collect();
        let mut tape_backend = p
            .backend(BackendMode::Tape)
            .expect("tape backend available");
        let mut interp_backend: Box<dyn ExecBackend> = Box::new(InterpBackend::new());
        for backend in [&mut tape_backend, &mut interp_backend] {
            backend.set_epsilon(DEFAULT_EPSILON);
            backend.retarget(&saturated);
        }
        let points: Vec<Vec<f64>> = (0..29).map(|i| vec![i as f64 * 0.23 - 3.0]).collect();
        let indices: Vec<usize> = (0..points.len()).collect();
        let mut tape_out = Vec::new();
        tape_backend.run_lanes(&p, &points, &indices, &mut tape_out);
        let mut interp_out = Vec::new();
        interp_backend.run_lanes(&p, &points, &indices, &mut interp_out);
        assert_eq!(tape_out.len(), interp_out.len());
        for (t, i) in tape_out.iter().zip(&interp_out) {
            assert_eq!(t.outcome, i.outcome);
            assert_eq!(t.value.to_bits(), i.value.to_bits());
        }
    }

    #[test]
    fn backend_discovery_respects_the_mode() {
        let p = compile(
            "double f(double x) { if (x < 1.0) { return x; } return 1.0; }",
            "f",
        )
        .unwrap();
        assert!(p.backend(BackendMode::Interp).is_none());
        let auto = p.backend(BackendMode::Auto).expect("auto resolves to tape");
        assert_eq!(auto.name(), "tape");
        let forced = p.backend(BackendMode::Tape).expect("tape available");
        assert_eq!(forced.name(), "tape");
        assert_eq!(forced.lane_width(), forced.simd_isa().lane_width());
        assert!(forced.lane_width() <= LANE_WIDTH);
    }

    #[test]
    fn tapes_serialize_to_a_readable_listing() {
        let p = compile(
            r#"
            double f(double x) {
                if (x <= 1.0) { x = sqrt(x) + 2.0; }
                while (x > 0.0 && x < 9.0) { x = x * 2.0; }
                return x;
            }
            "#,
            "f",
        )
        .unwrap();
        let tape = lower(&p).unwrap();
        let listing = tape.serialize();
        assert!(listing.contains("tape f arity=1"));
        assert!(listing.contains("branch.site s0 le"));
        assert!(listing.contains("sqrt"));
        assert!(listing.contains("branch.truth"));
        assert!(listing.contains("jump b"));
        assert!(listing.contains("ret"));
        assert_eq!(listing, tape.to_string());
        assert!(tape.num_blocks() > 4);
        assert_eq!(tape.num_funcs(), 1);
        assert_eq!(tape.name(), "f");
        assert_eq!(tape.arity(), 1);
        // Only the `<=` conditional is instrumentable; the `&&` condition
        // stays uninstrumented (truthiness branch).
        assert_eq!(tape.num_sites(), 1);
        assert_eq!(tape.fuel(), crate::interp::DEFAULT_FUEL);
    }

    #[test]
    fn soa_plans_cover_arithmetic_blocks_without_leaking_into_the_listing() {
        let p = compile(
            r#"
            double f(double x, double y) {
                double a = x * y + 2.0;
                double b = sqrt(fabs(a)) - x / 3.0;
                double c = sin(b) * cos(a) + exp(x * 0.001);
                if (c <= 1.0) { return c + a; }
                return c - b;
            }
            "#,
            "f",
        )
        .unwrap();
        let tape = lower(&p).unwrap();
        assert!(
            tape.num_soa_blocks() > 0,
            "straight-line double arithmetic should plan at least one SoA block"
        );
        // The plan is a pure execution detail: listings (and therefore the
        // fingerprint/corpus keys built from them) never mention it.
        assert!(!tape.serialize().contains("soa"));
    }

    #[test]
    fn soa_planner_bails_on_integer_blocks() {
        let p = compile(
            r#"
            double f(double x) {
                int hx = high_word(x) & 0x7fffffff;
                int k = hx >> 20;
                int j = k - 1023;
                double z = from_words(hx, low_word(x));
                return z + j;
            }
            "#,
            "f",
        )
        .unwrap();
        let tape = lower(&p).unwrap();
        assert_eq!(
            tape.num_soa_blocks(),
            0,
            "int-producing ops must disable the SoA plan for the block"
        );
    }

    #[test]
    fn soa_lane_path_is_bit_identical_across_isas() {
        let p = compile(
            r#"
            double f(double x, double y) {
                double a = x * y + 2.0;
                double b = sqrt(fabs(a)) - x / 3.0;
                double c = sin(b) * cos(a) + exp(x * 0.001);
                if (c <= 1.0) { return c + a; }
                if (a == b) { return 0.0; }
                return c - b;
            }
            "#,
            "f",
        )
        .unwrap();
        let tape = lower(&p).unwrap();
        assert!(tape.num_soa_blocks() > 0);
        let saturated: BranchSet = [BranchId::false_of(0), BranchId::true_of(1)]
            .into_iter()
            .collect();
        let specials = [
            -3.5,
            0.25,
            1.0,
            7.5,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            5e-324,
            1e300,
        ];
        let mut points = Vec::new();
        for &a in &specials {
            for &b in &specials {
                points.push(vec![a, b]);
            }
        }
        let indices: Vec<usize> = (0..points.len()).collect();
        // Reference: the eager scalar path, one eval per point.
        let reference: Vec<u64> = points
            .iter()
            .map(|point| {
                let mut ctx = ExecCtx::representing(saturated.clone());
                p.execute(point, &mut ctx);
                ctx.representing_value().to_bits()
            })
            .collect();
        for isa in SimdIsa::supported() {
            let mut backend = p.backend(BackendMode::Tape).expect("tape available");
            backend.set_simd(isa);
            backend.set_epsilon(DEFAULT_EPSILON);
            backend.retarget(&saturated);
            assert_eq!(backend.simd_isa(), isa);
            assert_eq!(backend.lane_width(), isa.lane_width());
            let mut evals = Vec::new();
            backend.run_lanes(&p, &points, &indices, &mut evals);
            assert_eq!(evals.len(), points.len());
            for ((eval, &expect), point) in evals.iter().zip(&reference).zip(&points) {
                assert_eq!(eval.outcome, RunOutcome::Done);
                assert_eq!(
                    eval.value.to_bits(),
                    expect,
                    "{isa} diverged from eager scalar on {point:?}"
                );
            }
        }
    }

    #[test]
    fn short_circuit_burns_follow_the_taken_path() {
        // The rhs of `&&` burns fuel only when evaluated; with fuel tuned
        // to the boundary, interpreter and tape must classify identically
        // on both the short-circuiting and the full-evaluation path.
        let p = compile(
            r#"
            double g(double a) { return a + 1.0; }
            double f(double x) {
                if (x > 0.0 && g(x) > 2.0) { return 1.0; }
                if (x < 0.0 || g(x) < 0.5) { return 2.0; }
                return 0.0;
            }
            "#,
            "f",
        )
        .unwrap();
        for fuel in 1..40 {
            let starved = p.clone().with_fuel(fuel);
            for v in [-1.0, 0.2, 3.0] {
                assert_observably_equal(&starved, &[v]);
            }
        }
    }
}
