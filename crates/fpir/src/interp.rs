//! Tree-walking interpreter for instrumented FPIR programs.
//!
//! The interpreter executes the entry function on a vector of `f64` inputs
//! against a [`coverme_runtime::ExecCtx`]. Every instrumented conditional
//! reports through [`ExecCtx::branch`], which is the runtime realization of
//! the injected `r = pen(site, op, a, b)` assignment followed by the branch
//! on `a op b`.
//!
//! Semantics follow C on the `double`/`int` pair: mixed arithmetic promotes
//! to `double`, `(int)` casts truncate toward zero, integer overflow wraps
//! (two's complement), and the bit-level builtins (`high_word`, `low_word`,
//! `from_words`, ...) give direct access to the IEEE-754 representation the
//! way Fdlibm's `__HI`/`__LO` macros do.
//!
//! # Run outcomes
//!
//! Interpreted programs are untrusted: a search submits inputs chosen to
//! *maximize* branch divergence, so loops that terminate on benign inputs
//! routinely spin forever on adversarial ones. Every execution is therefore
//! bounded by a step **fuel** ([`DEFAULT_FUEL`] statements/expressions,
//! configurable per program via [`IrProgram::with_fuel`]) and a call-depth
//! limit, and classified on the [`ExecCtx`]:
//!
//! * fuel exhausted → [`RunOutcome::Timeout`](coverme_runtime::RunOutcome),
//! * depth exhausted or a missing call target →
//!   [`RunOutcome::Trap`](coverme_runtime::RunOutcome),
//! * otherwise → [`RunOutcome::Done`](coverme_runtime::RunOutcome).
//!
//! An aborted run unwinds immediately; its truncated trace, partial
//! coverage and accumulator value are *not* meaningful and consumers (the
//! objective engine, the search driver) must discard them.

use std::collections::BTreeSet;

use coverme_runtime::{BackendMode, ExecBackend, ExecCtx, Program};

use crate::ast::{BinOp, Block, Expr, FunctionDef, Stmt, Ty, UnOp};
use crate::error::{CompileError, ErrorKind};
use crate::instrument::{as_comparison, InstrumentedModule};

/// Default step fuel per top-level call. A search performs 100k+ evaluations
/// per function, so the old 2M-step ceiling meant a single looping program
/// could burn minutes before aborting once; 100k steps is still ~3 orders of
/// magnitude above what any real corpus function needs per run.
pub const DEFAULT_FUEL: usize = 100_000;
/// Maximum call depth (shared with the lowered-tape executors, which must
/// classify depth exhaustion at exactly the same nesting level).
pub(crate) const MAX_DEPTH: usize = 128;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Value {
    Int(i64),
    Double(f64),
}

impl Value {
    fn as_f64(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Double(v) => v,
        }
    }

    fn as_i64(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Double(v) => {
                if v.is_nan() {
                    0
                } else {
                    // C truncation toward zero, saturating at the i64 range.
                    v.trunc().clamp(i64::MIN as f64, i64::MAX as f64) as i64
                }
            }
        }
    }

    fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Double(v) => v != 0.0,
        }
    }

    fn coerce(self, ty: Ty) -> Value {
        match ty {
            Ty::Int => Value::Int(self.as_i64()),
            Ty::Double => Value::Double(self.as_f64()),
            Ty::Void => self,
        }
    }
}

/// How a statement finished.
enum Flow {
    Normal,
    Return(Option<Value>),
    /// The run was classified Timeout/Trap on the context; unwind
    /// immediately.
    Abort,
}

/// An executable, instrumented FPIR program.
///
/// Implements [`coverme_runtime::Program`], so it can be handed to the
/// CoverMe driver or to any baseline tester.
#[derive(Debug, Clone)]
pub struct IrProgram {
    inst: InstrumentedModule,
    arity: usize,
    line_count: usize,
    fuel: usize,
}

impl IrProgram {
    /// Wraps an instrumented module, validating the entry signature.
    pub fn new(inst: InstrumentedModule) -> Result<IrProgram, CompileError> {
        let entry = inst.entry_function();
        let arity = entry.params.len();
        if arity == 0 {
            return Err(CompileError::at(
                ErrorKind::Instrument,
                entry.line,
                "entry function takes no inputs",
            ));
        }
        let mut lines = BTreeSet::new();
        collect_lines(&entry.body, &mut lines);
        Ok(IrProgram {
            arity,
            line_count: lines.len(),
            inst,
            fuel: DEFAULT_FUEL,
        })
    }

    /// Overrides the per-execution step fuel (statements + expressions
    /// evaluated before the run is classified
    /// [`Timeout`](coverme_runtime::RunOutcome::Timeout)).
    ///
    /// # Panics
    ///
    /// Panics if `fuel` is zero.
    pub fn with_fuel(mut self, fuel: usize) -> IrProgram {
        assert!(fuel > 0, "fuel must be positive");
        self.fuel = fuel;
        self
    }

    /// The per-execution step fuel in effect.
    pub fn fuel(&self) -> usize {
        self.fuel
    }

    /// The instrumented module backing this program.
    pub fn instrumented(&self) -> &InstrumentedModule {
        &self.inst
    }

    /// The static descendant relation (indexed by
    /// [`coverme_runtime::BranchId::index`]), ready to seed
    /// `SaturationTracker::with_static_descendants`.
    pub fn descendants(&self) -> Vec<coverme_runtime::BranchSet> {
        self.inst.descendants.clone()
    }

    /// Executes the program on `input` and returns the set of entry-function
    /// source lines whose statements were executed — the mini-language's
    /// exact line coverage (the analogue of Gcov line data).
    pub fn executed_lines(&self, input: &[f64]) -> BTreeSet<u32> {
        let mut ctx = ExecCtx::observe().without_trace();
        let mut interp = Interp::new(&self.inst, self.fuel, true);
        interp.run(input, &mut ctx);
        interp.executed_lines
    }

    /// Total number of distinct statement lines in the entry function.
    pub fn line_total(&self) -> usize {
        self.line_count
    }
}

impl Program for IrProgram {
    fn name(&self) -> &str {
        &self.inst.entry
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn num_sites(&self) -> usize {
        self.inst.num_sites()
    }

    fn execute(&self, input: &[f64], ctx: &mut ExecCtx) {
        assert_eq!(
            input.len(),
            self.arity,
            "program {} expects {} inputs, got {}",
            self.inst.entry,
            self.arity,
            input.len()
        );
        // `execute` takes `&self` (programs are shared across campaign
        // worker threads), so the interpreter scratch cannot live on the
        // program. `Interp::new` is allocation-free — its vectors start
        // empty and grow once within the run — and the flat `Env` below
        // replaces the old per-call `HashMap<String, Value>` chain, so the
        // per-evaluation setup cost is a few empty-vec constructions.
        let mut interp = Interp::new(&self.inst, self.fuel, false);
        interp.run(input, ctx);
    }

    fn source_lines(&self) -> usize {
        self.line_count
    }

    fn backend(&self, mode: BackendMode) -> Option<Box<dyn ExecBackend>> {
        crate::lower::program_backend(self, mode)
    }

    fn fingerprint(&self) -> u64 {
        // Key the corpus on the compiled form: any semantic edit to the
        // source changes the lowered tape and invalidates stale entries.
        // The rare program the tape cannot mirror falls back to the native
        // shape hash, exactly like a closure-backed port.
        match crate::lower::lower(self) {
            Ok(tape) => tape.fingerprint64(),
            Err(_) => {
                coverme_runtime::native_fingerprint(self.name(), self.arity, self.num_sites())
            }
        }
    }
}

fn collect_lines(block: &Block, lines: &mut BTreeSet<u32>) {
    for stmt in &block.stmts {
        lines.insert(stmt.line());
        match stmt {
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                collect_lines(then_block, lines);
                if let Some(e) = else_block {
                    collect_lines(e, lines);
                }
            }
            Stmt::While { body, .. } => collect_lines(body, lines),
            _ => {}
        }
    }
}

struct Interp<'a> {
    inst: &'a InstrumentedModule,
    steps: usize,
    fuel: usize,
    track_lines: bool,
    executed_lines: BTreeSet<u32>,
    env: Env<'a>,
    /// Evaluated call arguments, all frames flattened (indexed by base
    /// offset). Reused across calls so argument passing allocates at most
    /// once per run.
    args: Vec<Value>,
}

impl<'a> Interp<'a> {
    fn new(inst: &'a InstrumentedModule, fuel: usize, track_lines: bool) -> Interp<'a> {
        Interp {
            inst,
            steps: 0,
            fuel,
            track_lines,
            executed_lines: BTreeSet::new(),
            env: Env::new(),
            args: Vec::new(),
        }
    }

    fn run(&mut self, input: &[f64], ctx: &mut ExecCtx) -> Option<f64> {
        let entry = self.inst.entry_function();
        self.steps = 0;
        self.env.reset();
        self.args.clear();
        self.args.extend(input.iter().map(|&v| Value::Double(v)));
        match self.call(entry, 0, ctx, 0) {
            Some(Some(value)) => Some(value.as_f64()),
            _ => None,
        }
    }

    /// Checks the step fuel, classifying an exhausted run as a timeout.
    /// Returns `false` when the run must abort.
    #[inline]
    fn burn_step(&mut self, ctx: &mut ExecCtx) -> bool {
        self.steps += 1;
        if self.steps > self.fuel {
            ctx.mark_timeout();
            return false;
        }
        true
    }

    /// Calls a function whose evaluated arguments sit at
    /// `self.args[args_base..]`; `None` means aborted, `Some(ret)` normal
    /// completion.
    fn call(
        &mut self,
        function: &'a FunctionDef,
        args_base: usize,
        ctx: &mut ExecCtx,
        depth: usize,
    ) -> Option<Option<Value>> {
        if depth > MAX_DEPTH {
            ctx.mark_trap();
            return None;
        }
        self.env.push_frame();
        for (index, param) in function.params.iter().enumerate() {
            let arg = self.args[args_base + index];
            self.env.define(&param.name, arg.coerce(param.ty));
        }
        let flow = self.exec_block(&function.body, ctx, depth, true);
        self.env.pop_frame();
        match flow {
            Flow::Return(v) => Some(v),
            Flow::Normal => Some(None),
            Flow::Abort => None,
        }
    }

    fn exec_block(
        &mut self,
        block: &'a Block,
        ctx: &mut ExecCtx,
        depth: usize,
        track: bool,
    ) -> Flow {
        self.env.push_scope();
        for stmt in &block.stmts {
            let flow = self.exec_stmt(stmt, ctx, depth, track);
            match flow {
                Flow::Normal => {}
                other => {
                    self.env.pop_scope();
                    return other;
                }
            }
        }
        self.env.pop_scope();
        Flow::Normal
    }

    fn exec_stmt(&mut self, stmt: &'a Stmt, ctx: &mut ExecCtx, depth: usize, track: bool) -> Flow {
        if !self.burn_step(ctx) {
            return Flow::Abort;
        }
        if self.track_lines && track {
            self.executed_lines.insert(stmt.line());
        }
        match stmt {
            Stmt::Decl { ty, name, init, .. } => {
                let value = match init {
                    Some(init) => match self.eval(init, ctx, depth) {
                        Some(v) => v.coerce(*ty),
                        None => return Flow::Abort,
                    },
                    None => match ty {
                        Ty::Int => Value::Int(0),
                        _ => Value::Double(0.0),
                    },
                };
                self.env.define(name, value);
                Flow::Normal
            }
            Stmt::Assign { name, value, .. } => {
                let Some(v) = self.eval(value, ctx, depth) else {
                    return Flow::Abort;
                };
                self.env.assign(name, v);
                Flow::Normal
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                site,
                ..
            } => {
                let Some(outcome) = self.eval_condition(cond, *site, ctx, depth) else {
                    return Flow::Abort;
                };
                if outcome {
                    self.exec_block(then_block, ctx, depth, track)
                } else if let Some(else_block) = else_block {
                    self.exec_block(else_block, ctx, depth, track)
                } else {
                    Flow::Normal
                }
            }
            Stmt::While {
                cond, body, site, ..
            } => {
                loop {
                    let Some(outcome) = self.eval_condition(cond, *site, ctx, depth) else {
                        return Flow::Abort;
                    };
                    if !outcome {
                        break;
                    }
                    match self.exec_block(body, ctx, depth, track) {
                        Flow::Normal => {}
                        other => return other,
                    }
                    if !self.burn_step(ctx) {
                        return Flow::Abort;
                    }
                }
                Flow::Normal
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(expr) => match self.eval(expr, ctx, depth) {
                        Some(v) => Some(v),
                        None => return Flow::Abort,
                    },
                    None => None,
                };
                Flow::Return(v)
            }
            Stmt::ExprStmt { expr, .. } => match self.eval(expr, ctx, depth) {
                Some(_) => Flow::Normal,
                None => Flow::Abort,
            },
        }
    }

    /// Evaluates a conditional's condition. For instrumented sites the
    /// operands are evaluated once and reported through `ExecCtx::branch`
    /// (integer operands are promoted to doubles, Sect. 5.3 of the paper);
    /// uninstrumented conditions fall back to plain truthiness.
    fn eval_condition(
        &mut self,
        cond: &'a Expr,
        site: Option<u32>,
        ctx: &mut ExecCtx,
        depth: usize,
    ) -> Option<bool> {
        if let (Some(site), Some((op, lhs, rhs))) = (site, as_comparison(cond)) {
            let lhs = self.eval(lhs, ctx, depth)?;
            let rhs = self.eval(rhs, ctx, depth)?;
            Some(ctx.branch(site, op, lhs.as_f64(), rhs.as_f64()))
        } else {
            let v = self.eval(cond, ctx, depth)?;
            Some(v.truthy())
        }
    }

    fn eval(&mut self, expr: &'a Expr, ctx: &mut ExecCtx, depth: usize) -> Option<Value> {
        if !self.burn_step(ctx) {
            return None;
        }
        match expr {
            Expr::Int(v) => Some(Value::Int(*v)),
            Expr::Float(v) => Some(Value::Double(*v)),
            Expr::Var(name) => Some(self.env.get(name).unwrap_or(Value::Double(0.0))),
            Expr::Unary { op, expr } => {
                let v = self.eval(expr, ctx, depth)?;
                Some(match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Value::Int(i.wrapping_neg()),
                        Value::Double(d) => Value::Double(-d),
                    },
                    UnOp::BitNot => Value::Int(!v.as_i64()),
                    UnOp::Not => Value::Int(i64::from(!v.truthy())),
                })
            }
            Expr::Cast { ty, expr } => {
                let v = self.eval(expr, ctx, depth)?;
                Some(v.coerce(*ty))
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs, ctx, depth),
            Expr::Call { name, args } => self.eval_call(name, args, ctx, depth),
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        lhs: &'a Expr,
        rhs: &'a Expr,
        ctx: &mut ExecCtx,
        depth: usize,
    ) -> Option<Value> {
        // Short-circuit operators first.
        if op == BinOp::LogicalAnd {
            let l = self.eval(lhs, ctx, depth)?;
            if !l.truthy() {
                return Some(Value::Int(0));
            }
            let r = self.eval(rhs, ctx, depth)?;
            return Some(Value::Int(i64::from(r.truthy())));
        }
        if op == BinOp::LogicalOr {
            let l = self.eval(lhs, ctx, depth)?;
            if l.truthy() {
                return Some(Value::Int(1));
            }
            let r = self.eval(rhs, ctx, depth)?;
            return Some(Value::Int(i64::from(r.truthy())));
        }

        let l = self.eval(lhs, ctx, depth)?;
        let r = self.eval(rhs, ctx, depth)?;
        let both_int = matches!((l, r), (Value::Int(_), Value::Int(_)));
        Some(match op {
            BinOp::Add => {
                if both_int {
                    Value::Int(l.as_i64().wrapping_add(r.as_i64()))
                } else {
                    Value::Double(l.as_f64() + r.as_f64())
                }
            }
            BinOp::Sub => {
                if both_int {
                    Value::Int(l.as_i64().wrapping_sub(r.as_i64()))
                } else {
                    Value::Double(l.as_f64() - r.as_f64())
                }
            }
            BinOp::Mul => {
                if both_int {
                    Value::Int(l.as_i64().wrapping_mul(r.as_i64()))
                } else {
                    Value::Double(l.as_f64() * r.as_f64())
                }
            }
            BinOp::Div => {
                if both_int {
                    let divisor = r.as_i64();
                    if divisor == 0 {
                        Value::Int(0)
                    } else {
                        Value::Int(l.as_i64().wrapping_div(divisor))
                    }
                } else {
                    Value::Double(l.as_f64() / r.as_f64())
                }
            }
            BinOp::Rem => {
                let divisor = r.as_i64();
                if divisor == 0 {
                    Value::Int(0)
                } else {
                    Value::Int(l.as_i64().wrapping_rem(divisor))
                }
            }
            BinOp::BitAnd => Value::Int(l.as_i64() & r.as_i64()),
            BinOp::BitOr => Value::Int(l.as_i64() | r.as_i64()),
            BinOp::BitXor => Value::Int(l.as_i64() ^ r.as_i64()),
            BinOp::Shl => Value::Int(l.as_i64().wrapping_shl(r.as_i64() as u32 & 63)),
            BinOp::Shr => Value::Int(l.as_i64().wrapping_shr(r.as_i64() as u32 & 63)),
            BinOp::Cmp(cmp) => {
                // Uninstrumented comparisons inside larger expressions; the
                // instrumented top-level comparisons never reach this path.
                let holds = if both_int {
                    int_compare(cmp, l.as_i64(), r.as_i64())
                } else {
                    cmp.eval(l.as_f64(), r.as_f64())
                };
                Value::Int(i64::from(holds))
            }
            BinOp::LogicalAnd | BinOp::LogicalOr => unreachable!("handled above"),
        })
    }

    fn eval_call(
        &mut self,
        name: &str,
        args: &'a [Expr],
        ctx: &mut ExecCtx,
        depth: usize,
    ) -> Option<Value> {
        let base = self.args.len();
        for arg in args {
            match self.eval(arg, ctx, depth) {
                Some(v) => self.args.push(v),
                None => {
                    self.args.truncate(base);
                    return None;
                }
            }
        }
        if let Some(result) = eval_builtin(name, &self.args[base..]) {
            self.args.truncate(base);
            return Some(result);
        }
        let Some(function) = self.inst.module.function(name) else {
            // The type checker validates call targets at compile time, so
            // this is unreachable for compiled modules — but a trap (not a
            // panic) keeps hand-assembled or corrupted modules classified.
            ctx.mark_trap();
            self.args.truncate(base);
            return None;
        };
        for (index, param) in function.params.iter().enumerate() {
            let v = self.args[base + index];
            self.args[base + index] = v.coerce(param.ty);
        }
        let result = self.call(function, base, ctx, depth + 1);
        self.args.truncate(base);
        match result? {
            Some(v) => Some(v),
            None => Some(Value::Double(0.0)),
        }
    }
}

pub(crate) fn int_compare(cmp: coverme_runtime::Cmp, a: i64, b: i64) -> bool {
    use coverme_runtime::Cmp;
    match cmp {
        Cmp::Eq => a == b,
        Cmp::Ne => a != b,
        Cmp::Lt => a < b,
        Cmp::Le => a <= b,
        Cmp::Gt => a > b,
        Cmp::Ge => a >= b,
    }
}

fn eval_builtin(name: &str, args: &[Value]) -> Option<Value> {
    let d = |i: usize| args[i].as_f64();
    let n = |i: usize| args[i].as_i64();
    Some(match name {
        "sqrt" => Value::Double(d(0).sqrt()),
        "fabs" => Value::Double(d(0).abs()),
        "floor" => Value::Double(d(0).floor()),
        "sin" => Value::Double(d(0).sin()),
        "cos" => Value::Double(d(0).cos()),
        "exp" => Value::Double(d(0).exp()),
        "log" => Value::Double(d(0).ln()),
        "pow" => Value::Double(d(0).powf(d(1))),
        "high_word" => Value::Int(i64::from((d(0).to_bits() >> 32) as u32 as i32)),
        "low_word" => Value::Int(i64::from(d(0).to_bits() as u32)),
        "from_words" => {
            let hi = (n(0) as u32 as u64) << 32;
            let lo = n(1) as u32 as u64;
            Value::Double(f64::from_bits(hi | lo))
        }
        "with_high_word" => {
            let bits = (d(0).to_bits() & 0x0000_0000_ffff_ffff) | ((n(1) as u32 as u64) << 32);
            Value::Double(f64::from_bits(bits))
        }
        "with_low_word" => {
            let bits = (d(0).to_bits() & 0xffff_ffff_0000_0000) | (n(1) as u32 as u64);
            Value::Double(f64::from_bits(bits))
        }
        "scalbn" => Value::Double(d(0) * 2f64.powi(n(1).clamp(-2100, 2100) as i32)),
        _ => return None,
    })
}

/// Lexically scoped variable environment, flattened into one entry stack.
///
/// The previous implementation kept a `Vec<HashMap<String, Value>>` per
/// call frame: every call allocated a map chain and every `define` cloned
/// the variable name. On the FPIR hot path (100k+ evaluations per search,
/// each walking the whole program) that allocation traffic dominated. The
/// flat form pushes `(&str, Value)` pairs borrowing the names from the
/// instrumented module, with scope and frame boundaries as saved lengths;
/// lookups scan backward to the current frame base, which for the
/// handful of live variables a mini-language function has is faster than
/// hashing.
struct Env<'a> {
    entries: Vec<(&'a str, Value)>,
    /// Start index (into `entries`) of each open lexical scope.
    scopes: Vec<usize>,
    /// Start index (into `entries`) of each active call frame; lookups do
    /// not cross the innermost base.
    frames: Vec<usize>,
}

impl<'a> Env<'a> {
    fn new() -> Env<'a> {
        Env {
            entries: Vec::new(),
            scopes: Vec::new(),
            frames: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.entries.clear();
        self.scopes.clear();
        self.frames.clear();
    }

    fn push_frame(&mut self) {
        self.frames.push(self.entries.len());
        self.push_scope();
    }

    fn pop_frame(&mut self) {
        self.pop_scope();
        let base = self.frames.pop().expect("at least one frame");
        self.entries.truncate(base);
    }

    fn push_scope(&mut self) {
        self.scopes.push(self.entries.len());
    }

    fn pop_scope(&mut self) {
        let start = self.scopes.pop().expect("at least one scope");
        self.entries.truncate(start);
    }

    fn define(&mut self, name: &'a str, value: Value) {
        self.entries.push((name, value));
    }

    fn frame_base(&self) -> usize {
        *self.frames.last().expect("at least one frame")
    }

    fn assign(&mut self, name: &'a str, value: Value) {
        let base = self.frame_base();
        for (entry_name, slot) in self.entries[base..].iter_mut().rev() {
            if *entry_name == name {
                // Preserve the declared representation: assigning a double to
                // an int-typed variable truncates, as in C.
                *slot = match slot {
                    Value::Int(_) => Value::Int(value.as_i64()),
                    Value::Double(_) => Value::Double(value.as_f64()),
                };
                return;
            }
        }
        // Type checking guarantees this does not happen; degrade gracefully.
        self.define(name, value);
    }

    fn get(&self, name: &str) -> Option<Value> {
        let base = self.frame_base();
        self.entries[base..]
            .iter()
            .rev()
            .find(|(entry_name, _)| *entry_name == name)
            .map(|&(_, value)| value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use coverme_runtime::{BranchId, Cmp, RunOutcome};

    fn run_value(program: &IrProgram, input: &[f64]) -> Option<f64> {
        let mut ctx = ExecCtx::observe();
        let mut interp = Interp::new(program.instrumented(), program.fuel(), false);
        interp.run(input, &mut ctx)
    }

    #[test]
    fn evaluates_arithmetic_and_calls() {
        let p = compile(
            r#"
            double square(double x) { return x * x; }
            double f(double x) {
                double y = square(x) + 1.0;
                if (y >= 5.0) { return y; }
                return -y;
            }
            "#,
            "f",
        )
        .unwrap();
        assert_eq!(run_value(&p, &[2.0]), Some(5.0));
        assert_eq!(run_value(&p, &[1.0]), Some(-2.0));
    }

    #[test]
    fn reports_branches_through_the_context() {
        let p = compile(
            r#"
            double f(double x) {
                if (x <= 1.0) { return 0.0; }
                if (x == 4.0) { return 1.0; }
                return 2.0;
            }
            "#,
            "f",
        )
        .unwrap();
        let mut ctx = ExecCtx::observe();
        p.execute(&[4.0], &mut ctx);
        assert!(ctx.covered().contains(BranchId::false_of(0)));
        assert!(ctx.covered().contains(BranchId::true_of(1)));
        assert_eq!(ctx.trace().len(), 2);
        assert_eq!(ctx.trace().last().unwrap().op, Cmp::Eq);
        assert_eq!(ctx.run_outcome(), RunOutcome::Done);
    }

    #[test]
    fn bit_level_builtins_match_ieee754() {
        let p = compile(
            r#"
            int f(double x) {
                int hx = high_word(x);
                int lx = low_word(x);
                double y = from_words(hx, lx);
                if (y == x) { return 1; }
                return 0;
            }
            "#,
            "f",
        )
        .unwrap();
        for v in [1.0, -2.5, 1e300, 5e-324, 0.1] {
            assert_eq!(run_value(&p, &[v]), Some(1.0), "roundtrip failed for {v}");
        }
    }

    #[test]
    fn high_word_matches_fdlibm_convention() {
        let p = compile(
            r#"
            int f(double x) {
                int ix = high_word(x) & 0x7fffffff;
                if (ix >= 0x7ff00000) { return 1; }
                return 0;
            }
            "#,
            "f",
        )
        .unwrap();
        assert_eq!(run_value(&p, &[f64::INFINITY]), Some(1.0));
        assert_eq!(run_value(&p, &[f64::NAN]), Some(1.0));
        assert_eq!(run_value(&p, &[1.5]), Some(0.0));
    }

    #[test]
    fn while_loops_execute_and_report_each_iteration() {
        let p = compile(
            r#"
            double f(double x) {
                int i = 0;
                double acc = 0.0;
                while (i < 4) {
                    acc = acc + x;
                    i = i + 1;
                }
                return acc;
            }
            "#,
            "f",
        )
        .unwrap();
        let mut ctx = ExecCtx::observe();
        p.execute(&[2.5], &mut ctx);
        // 4 true iterations + 1 false exit.
        assert_eq!(ctx.trace().len(), 5);
        assert_eq!(run_value(&p, &[2.5]), Some(10.0));
    }

    #[test]
    fn infinite_loops_are_classified_as_timeouts() {
        let p = compile(
            r#"
            double f(double x) {
                while (x > 0.0) { x = x + 1.0; }
                return x;
            }
            "#,
            "f",
        )
        .unwrap();
        let mut ctx = ExecCtx::observe().without_trace();
        // Must terminate (abort) rather than loop forever, and say why.
        p.execute(&[1.0], &mut ctx);
        assert!(ctx.covered().contains(BranchId::true_of(0)));
        assert_eq!(ctx.run_outcome(), RunOutcome::Timeout);
        // A non-looping input on the same program is Done.
        let mut clean = ExecCtx::observe();
        p.execute(&[-1.0], &mut clean);
        assert_eq!(clean.run_outcome(), RunOutcome::Done);
    }

    #[test]
    fn fuel_is_configurable_per_program() {
        let p = compile(
            r#"
            double f(double x) {
                int i = 0;
                while (i < 1000) { i = i + 1; }
                return x;
            }
            "#,
            "f",
        )
        .unwrap();
        assert_eq!(p.fuel(), DEFAULT_FUEL);
        // Generous fuel: the loop finishes.
        let mut ctx = ExecCtx::observe().without_trace();
        p.execute(&[1.0], &mut ctx);
        assert_eq!(ctx.run_outcome(), RunOutcome::Done);
        // Starved fuel: the same program times out.
        let starved = p.with_fuel(100);
        assert_eq!(starved.fuel(), 100);
        let mut ctx = ExecCtx::observe().without_trace();
        starved.execute(&[1.0], &mut ctx);
        assert_eq!(ctx.run_outcome(), RunOutcome::Timeout);
    }

    #[test]
    fn casts_truncate_toward_zero() {
        let p = compile(
            r#"
            int f(double x) { return (int) x; }
            "#,
            "f",
        )
        .unwrap();
        assert_eq!(run_value(&p, &[2.9]), Some(2.0));
        assert_eq!(run_value(&p, &[-2.9]), Some(-2.0));
    }

    #[test]
    fn executed_lines_reflect_the_path_taken() {
        let source = r#"double f(double x) {
    if (x > 0.0) {
        x = x + 1.0;
    } else {
        x = x - 1.0;
    }
    return x;
}"#;
        let p = compile(source, "f").unwrap();
        let pos_lines = p.executed_lines(&[5.0]);
        let neg_lines = p.executed_lines(&[-5.0]);
        assert!(pos_lines.contains(&3));
        assert!(!pos_lines.contains(&5));
        assert!(neg_lines.contains(&5));
        assert!(!neg_lines.contains(&3));
        assert!(p.line_total() >= 4);
    }

    #[test]
    fn recursion_depth_is_bounded_and_classified_as_trap() {
        let p = compile(
            r#"
            double f(double x) {
                if (x > 0.0) { return f(x); }
                return x;
            }
            "#,
            "f",
        )
        .unwrap();
        let mut ctx = ExecCtx::observe();
        p.execute(&[1.0], &mut ctx); // must not overflow the stack
        assert_eq!(ctx.run_outcome(), RunOutcome::Trap);
        let mut clean = ExecCtx::observe();
        p.execute(&[-1.0], &mut clean);
        assert_eq!(clean.run_outcome(), RunOutcome::Done);
    }

    #[test]
    fn shadowing_resolves_to_the_innermost_scope() {
        let p = compile(
            r#"
            double f(double x) {
                double y = 1.0;
                if (x > 0.0) {
                    double y = 10.0;
                    x = x + y;
                }
                return x + y;
            }
            "#,
            "f",
        )
        .unwrap();
        // Inner y (10) applies inside the block, outer y (1) at the return.
        assert_eq!(run_value(&p, &[2.0]), Some(13.0));
        assert_eq!(run_value(&p, &[-2.0]), Some(-1.0));
    }

    #[test]
    fn callee_locals_do_not_leak_into_the_caller() {
        // `helper` defines `z`; after it returns, `z` in `f` must resolve
        // to f's own `z`, not a stale callee entry.
        let p = compile(
            r#"
            double helper(double a) { double z = 99.0; return a + z; }
            double f(double x) {
                double z = 1.0;
                double w = helper(x);
                return z + w;
            }
            "#,
            "f",
        )
        .unwrap();
        assert_eq!(run_value(&p, &[1.0]), Some(101.0));
    }

    #[test]
    fn program_trait_metadata() {
        let p = compile(
            "double f(double x, double y) { if (x < y) { return x; } return y; }",
            "f",
        )
        .unwrap();
        assert_eq!(p.name(), "f");
        assert_eq!(Program::arity(&p), 2);
        assert_eq!(Program::num_sites(&p), 1);
        // Everything is on one source line in this one-liner definition.
        assert_eq!(Program::source_lines(&p), 1);
        assert_eq!(p.descendants().len(), 2);
    }
}
