//! Pretty printer: renders an (instrumented) module back to C-like source.
//!
//! For instrumented modules the printer makes the injected assignments
//! explicit, producing the `FOO_I` view of the paper's Fig. 3:
//!
//! ```text
//! double foo(double x) {
//!     r = pen(0, <=, x, 1.0);
//!     if (x <= 1.0) {
//!         ...
//!     }
//! }
//! ```

use crate::ast::{BinOp, Block, Expr, FunctionDef, Module, Stmt, UnOp};
use crate::instrument::InstrumentedModule;

/// Renders a plain module to source text.
pub fn to_source(module: &Module) -> String {
    let mut out = String::new();
    for f in &module.functions {
        print_function(&mut out, f, false);
        out.push('\n');
    }
    out
}

/// Renders an instrumented module, showing the injected `r = pen(...)`
/// assignments before every instrumented conditional.
pub fn to_instrumented_source(inst: &InstrumentedModule) -> String {
    let mut out = String::new();
    for f in &inst.module.functions {
        print_function(&mut out, f, true);
        out.push('\n');
    }
    out
}

fn print_function(out: &mut String, f: &FunctionDef, show_pen: bool) {
    out.push_str(&format!("{} {}(", f.ret, f.name));
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{} {}", p.ty, p.name));
    }
    out.push_str(") ");
    print_block(out, &f.body, 0, show_pen);
    out.push('\n');
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(out: &mut String, block: &Block, level: usize, show_pen: bool) {
    out.push_str("{\n");
    for stmt in &block.stmts {
        print_stmt(out, stmt, level + 1, show_pen);
    }
    indent(out, level);
    out.push('}');
}

fn print_stmt(out: &mut String, stmt: &Stmt, level: usize, show_pen: bool) {
    match stmt {
        Stmt::Decl { ty, name, init, .. } => {
            indent(out, level);
            match init {
                Some(init) => out.push_str(&format!("{ty} {name} = {};\n", expr_to_string(init))),
                None => out.push_str(&format!("{ty} {name};\n")),
            }
        }
        Stmt::Assign { name, value, .. } => {
            indent(out, level);
            out.push_str(&format!("{name} = {};\n", expr_to_string(value)));
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
            site,
            ..
        } => {
            if show_pen {
                print_pen(out, level, *site, cond);
            }
            indent(out, level);
            out.push_str(&format!("if ({}) ", expr_to_string(cond)));
            print_block(out, then_block, level, show_pen);
            if let Some(else_block) = else_block {
                out.push_str(" else ");
                print_block(out, else_block, level, show_pen);
            }
            out.push('\n');
        }
        Stmt::While {
            cond, body, site, ..
        } => {
            if show_pen {
                print_pen(out, level, *site, cond);
            }
            indent(out, level);
            out.push_str(&format!("while ({}) ", expr_to_string(cond)));
            print_block(out, body, level, show_pen);
            out.push('\n');
        }
        Stmt::Return { value, .. } => {
            indent(out, level);
            match value {
                Some(v) => out.push_str(&format!("return {};\n", expr_to_string(v))),
                None => out.push_str("return;\n"),
            }
        }
        Stmt::ExprStmt { expr, .. } => {
            indent(out, level);
            out.push_str(&format!("{};\n", expr_to_string(expr)));
        }
    }
}

fn print_pen(out: &mut String, level: usize, site: Option<u32>, cond: &Expr) {
    if let (Some(site), Some((op, lhs, rhs))) = (site, crate::instrument::as_comparison(cond)) {
        indent(out, level);
        out.push_str(&format!(
            "r = pen({site}, {op}, {}, {});\n",
            expr_to_string(lhs),
            expr_to_string(rhs)
        ));
    }
}

/// Renders an expression with minimal parenthesization (every binary node is
/// parenthesized, which is always correct if not always minimal).
pub fn expr_to_string(expr: &Expr) -> String {
    match expr {
        Expr::Int(v) => format!("{v}"),
        Expr::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e16 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        Expr::Var(name) => name.clone(),
        Expr::Unary { op, expr } => {
            let symbol = match op {
                UnOp::Neg => "-",
                UnOp::BitNot => "~",
                UnOp::Not => "!",
            };
            format!("{symbol}{}", expr_to_string(expr))
        }
        Expr::Binary { op, lhs, rhs } => {
            let symbol = binop_symbol(*op);
            format!("({} {symbol} {})", expr_to_string(lhs), expr_to_string(rhs))
        }
        Expr::Cast { ty, expr } => format!("({ty}) {}", expr_to_string(expr)),
        Expr::Call { name, args } => {
            let rendered: Vec<String> = args.iter().map(expr_to_string).collect();
            format!("{name}({})", rendered.join(", "))
        }
    }
}

fn binop_symbol(op: BinOp) -> String {
    match op {
        BinOp::Add => "+".to_string(),
        BinOp::Sub => "-".to_string(),
        BinOp::Mul => "*".to_string(),
        BinOp::Div => "/".to_string(),
        BinOp::Rem => "%".to_string(),
        BinOp::BitAnd => "&".to_string(),
        BinOp::BitOr => "|".to_string(),
        BinOp::BitXor => "^".to_string(),
        BinOp::Shl => "<<".to_string(),
        BinOp::Shr => ">>".to_string(),
        BinOp::Cmp(cmp) => cmp.symbol().to_string(),
        BinOp::LogicalAnd => "&&".to_string(),
        BinOp::LogicalOr => "||".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::instrument;
    use crate::parser::parse;
    use crate::typeck::check;

    const SOURCE: &str = r#"
        double foo(double x) {
            if (x <= 1.0) { x = x + 2.5; }
            double y = x * x;
            if (y == 4.0) { return 1.0; }
            return 0.0;
        }
    "#;

    #[test]
    fn plain_printing_roundtrips_through_the_parser() {
        let module = check(parse(SOURCE).unwrap()).unwrap();
        let printed = to_source(&module);
        let reparsed = check(parse(&printed).unwrap()).unwrap();
        // Printing the reparsed module again is a fixpoint.
        assert_eq!(to_source(&reparsed), printed);
    }

    #[test]
    fn instrumented_printing_shows_pen_assignments() {
        let module = check(parse(SOURCE).unwrap()).unwrap();
        let inst = instrument(module, "foo").unwrap();
        let printed = to_instrumented_source(&inst);
        assert!(printed.contains("r = pen(0, <=, x, 1.0);"));
        assert!(printed.contains("r = pen(1, ==, y, 4.0);"));
    }

    #[test]
    fn expression_rendering_covers_operators() {
        let module = check(
            parse("int f(int a, int b) { return ((a & b) | (a ^ b)) << (a % (b + 1)); }").unwrap(),
        )
        .unwrap();
        let printed = to_source(&module);
        for symbol in ["&", "|", "^", "<<", "%"] {
            assert!(printed.contains(symbol), "missing {symbol} in {printed}");
        }
    }

    #[test]
    fn casts_and_calls_render() {
        let module =
            check(parse("double f(double x) { return sqrt((double) ((int) x)); }").unwrap())
                .unwrap();
        let printed = to_source(&module);
        assert!(printed.contains("sqrt((double) (int) x)"));
    }
}
