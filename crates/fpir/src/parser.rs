//! Recursive-descent parser for the FPIR mini-language.
//!
//! Grammar (simplified):
//!
//! ```text
//! module     := function*
//! function   := type IDENT '(' params? ')' block
//! params     := type IDENT (',' type IDENT)*
//! block      := '{' stmt* '}'
//! stmt       := type IDENT ('=' expr)? ';'
//!             | IDENT '=' expr ';'
//!             | 'if' '(' expr ')' block ('else' (block | if-stmt))?
//!             | 'while' '(' expr ')' block
//!             | 'return' expr? ';'
//!             | expr ';'
//! expr       := logical_or
//! logical_or := logical_and ('||' logical_and)*
//! logical_and:= bit_or ('&&' bit_or)*
//! bit_or     := bit_xor ('|' bit_xor)*
//! bit_xor    := bit_and ('^' bit_and)*
//! bit_and    := equality ('&' equality)*
//! equality   := relational (('==' | '!=') relational)*
//! relational := shift (('<' | '<=' | '>' | '>=') shift)*
//! shift      := additive (('<<' | '>>') additive)*
//! additive   := multiplicative (('+' | '-') multiplicative)*
//! multiplicative := unary (('*' | '/' | '%') unary)*
//! unary      := ('-' | '~' | '!') unary | cast
//! cast       := '(' type ')' unary | primary
//! primary    := INT | FLOAT | IDENT | IDENT '(' args? ')' | '(' expr ')'
//! ```

use coverme_runtime::Cmp;

use crate::ast::{BinOp, Block, Expr, FunctionDef, Module, Param, Stmt, Ty, UnOp};
use crate::error::{CompileError, ErrorKind};
use crate::lexer::{Lexer, Token, TokenKind};

/// Parses a complete module from source text.
///
/// # Errors
///
/// Returns the first lexing or parsing error.
pub fn parse(source: &str) -> Result<Module, CompileError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser::new(tokens).parse_module()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn expect(&mut self, expected: &TokenKind, what: &str) -> Result<(), CompileError> {
        if self.peek() == expected {
            self.bump();
            Ok(())
        } else {
            Err(CompileError::at(
                ErrorKind::Parse,
                self.line(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn parse_module(&mut self) -> Result<Module, CompileError> {
        let mut functions = Vec::new();
        while *self.peek() != TokenKind::Eof {
            functions.push(self.parse_function()?);
        }
        Ok(Module { functions })
    }

    fn parse_type(&mut self) -> Result<Ty, CompileError> {
        match self.peek() {
            TokenKind::KwDouble => {
                self.bump();
                Ok(Ty::Double)
            }
            TokenKind::KwInt => {
                self.bump();
                Ok(Ty::Int)
            }
            TokenKind::KwVoid => {
                self.bump();
                Ok(Ty::Void)
            }
            other => Err(CompileError::at(
                ErrorKind::Parse,
                self.line(),
                format!("expected a type, found {other:?}"),
            )),
        }
    }

    fn parse_ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(CompileError::at(
                ErrorKind::Parse,
                self.line(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn parse_function(&mut self) -> Result<FunctionDef, CompileError> {
        let line = self.line();
        let ret = self.parse_type()?;
        let name = self.parse_ident("function name")?;
        self.expect(&TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let ty = self.parse_type()?;
                let pname = self.parse_ident("parameter name")?;
                params.push(Param { ty, name: pname });
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        let body = self.parse_block()?;
        Ok(FunctionDef {
            ret,
            name,
            params,
            body,
            line,
        })
    }

    fn parse_block(&mut self) -> Result<Block, CompileError> {
        self.expect(&TokenKind::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            if *self.peek() == TokenKind::Eof {
                return Err(CompileError::at(
                    ErrorKind::Parse,
                    self.line(),
                    "unexpected end of input inside a block",
                ));
            }
            stmts.push(self.parse_stmt()?);
        }
        self.expect(&TokenKind::RBrace, "'}'")?;
        Ok(Block { stmts })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::KwDouble | TokenKind::KwInt => {
                let ty = self.parse_type()?;
                let name = self.parse_ident("variable name")?;
                let init = if *self.peek() == TokenKind::Assign {
                    self.bump();
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                self.expect(&TokenKind::Semicolon, "';'")?;
                Ok(Stmt::Decl {
                    ty,
                    name,
                    init,
                    line,
                })
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(&TokenKind::LParen, "'('")?;
                let cond = self.parse_expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                let then_block = self.parse_block_or_single()?;
                let else_block = if *self.peek() == TokenKind::KwElse {
                    self.bump();
                    if *self.peek() == TokenKind::KwIf {
                        // `else if` chains become a nested single-statement block.
                        let nested = self.parse_stmt()?;
                        Some(Block {
                            stmts: vec![nested],
                        })
                    } else {
                        Some(self.parse_block_or_single()?)
                    }
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    line,
                    site: None,
                })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen, "'('")?;
                let cond = self.parse_expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                let body = self.parse_block_or_single()?;
                Ok(Stmt::While {
                    cond,
                    body,
                    line,
                    site: None,
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if *self.peek() == TokenKind::Semicolon {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&TokenKind::Semicolon, "';'")?;
                Ok(Stmt::Return { value, line })
            }
            TokenKind::Ident(name) => {
                // Lookahead: assignment or expression statement.
                if self.tokens[self.pos + 1].kind == TokenKind::Assign {
                    self.bump(); // ident
                    self.bump(); // '='
                    let value = self.parse_expr()?;
                    self.expect(&TokenKind::Semicolon, "';'")?;
                    Ok(Stmt::Assign { name, value, line })
                } else {
                    let expr = self.parse_expr()?;
                    self.expect(&TokenKind::Semicolon, "';'")?;
                    Ok(Stmt::ExprStmt { expr, line })
                }
            }
            other => Err(CompileError::at(
                ErrorKind::Parse,
                line,
                format!("unexpected token {other:?} at start of statement"),
            )),
        }
    }

    /// Parses either a braced block or a single statement (C allows both as
    /// `if`/`while` bodies; Fdlibm uses both styles).
    fn parse_block_or_single(&mut self) -> Result<Block, CompileError> {
        if *self.peek() == TokenKind::LBrace {
            self.parse_block()
        } else {
            let stmt = self.parse_stmt()?;
            Ok(Block { stmts: vec![stmt] })
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, CompileError> {
        self.parse_logical_or()
    }

    fn parse_logical_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_logical_and()?;
        while *self.peek() == TokenKind::OrOr {
            self.bump();
            let rhs = self.parse_logical_and()?;
            lhs = Expr::Binary {
                op: BinOp::LogicalOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_logical_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_bit_or()?;
        while *self.peek() == TokenKind::AndAnd {
            self.bump();
            let rhs = self.parse_bit_or()?;
            lhs = Expr::Binary {
                op: BinOp::LogicalAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_bit_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_bit_xor()?;
        while *self.peek() == TokenKind::Pipe {
            self.bump();
            let rhs = self.parse_bit_xor()?;
            lhs = Expr::Binary {
                op: BinOp::BitOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_bit_xor(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_bit_and()?;
        while *self.peek() == TokenKind::Caret {
            self.bump();
            let rhs = self.parse_bit_and()?;
            lhs = Expr::Binary {
                op: BinOp::BitXor,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_bit_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_equality()?;
        while *self.peek() == TokenKind::Amp {
            self.bump();
            let rhs = self.parse_equality()?;
            lhs = Expr::Binary {
                op: BinOp::BitAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => Cmp::Eq,
                TokenKind::NotEq => Cmp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_relational()?;
            lhs = Expr::Binary {
                op: BinOp::Cmp(op),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_shift()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => Cmp::Lt,
                TokenKind::Le => Cmp::Le,
                TokenKind::Gt => Cmp::Gt,
                TokenKind::Ge => Cmp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_shift()?;
            lhs = Expr::Binary {
                op: BinOp::Cmp(op),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_shift(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => BinOp::Shl,
                TokenKind::Shr => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileError> {
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Tilde => Some(UnOp::BitNot),
            TokenKind::Bang => Some(UnOp::Not),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.parse_unary()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            });
        }
        self.parse_cast()
    }

    fn parse_cast(&mut self) -> Result<Expr, CompileError> {
        // `(int) expr` / `(double) expr`.
        if *self.peek() == TokenKind::LParen {
            if let TokenKind::KwInt | TokenKind::KwDouble = self.tokens[self.pos + 1].kind {
                if self.tokens[self.pos + 2].kind == TokenKind::RParen {
                    self.bump(); // (
                    let ty = self.parse_type()?;
                    self.bump(); // )
                    let expr = self.parse_unary()?;
                    return Ok(Expr::Cast {
                        ty,
                        expr: Box::new(expr),
                    });
                }
            }
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if *self.peek() == TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != TokenKind::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if *self.peek() == TokenKind::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "')'")?;
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let expr = self.parse_expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(expr)
            }
            other => Err(CompileError::at(
                ErrorKind::Parse,
                line,
                format!("unexpected token {other:?} in expression"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_function() {
        let m = parse(
            r#"
            double foo(double x) {
                double y;
                y = x * x;
                return y;
            }
            "#,
        )
        .unwrap();
        assert_eq!(m.functions.len(), 1);
        let f = &m.functions[0];
        assert_eq!(f.name, "foo");
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.body.stmts.len(), 3);
    }

    #[test]
    fn parses_if_else_chains() {
        let m = parse(
            r#"
            double f(double x) {
                if (x < 0.0) { return -x; }
                else if (x == 0.0) { return 0.0; }
                else { return x; }
            }
            "#,
        )
        .unwrap();
        let Stmt::If { else_block, .. } = &m.functions[0].body.stmts[0] else {
            panic!("expected if");
        };
        let nested = else_block.as_ref().unwrap();
        assert!(matches!(nested.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_while_and_compound_conditions() {
        let m = parse(
            r#"
            int f(int n) {
                int i = 0;
                while (i < n && n > 0) { i = i + 1; }
                return i;
            }
            "#,
        )
        .unwrap();
        let Stmt::While { cond, .. } = &m.functions[0].body.stmts[1] else {
            panic!("expected while");
        };
        assert!(matches!(
            cond,
            Expr::Binary {
                op: BinOp::LogicalAnd,
                ..
            }
        ));
    }

    #[test]
    fn parses_bit_manipulation_and_hex() {
        let m = parse(
            r#"
            int f(double x) {
                int ix = high_word(x) & 0x7fffffff;
                if (ix >= 0x7ff00000) { return 1; }
                return (ix >> 20) - 1023;
            }
            "#,
        )
        .unwrap();
        let f = &m.functions[0];
        assert_eq!(f.body.stmts.len(), 3);
        let Stmt::Decl {
            init: Some(init), ..
        } = &f.body.stmts[0]
        else {
            panic!("expected decl with init");
        };
        assert!(matches!(
            init,
            Expr::Binary {
                op: BinOp::BitAnd,
                ..
            }
        ));
    }

    #[test]
    fn parses_casts_and_unary() {
        let m = parse(
            r#"
            double f(double x) {
                int i = (int) x;
                double y = (double) (~i);
                return -y;
            }
            "#,
        )
        .unwrap();
        let Stmt::Decl {
            init: Some(init), ..
        } = &m.functions[0].body.stmts[0]
        else {
            panic!()
        };
        assert!(matches!(init, Expr::Cast { ty: Ty::Int, .. }));
    }

    #[test]
    fn operator_precedence_mul_binds_tighter_than_add() {
        let m = parse("double f(double x) { return x + x * 2.0; }").unwrap();
        let Stmt::Return {
            value: Some(Expr::Binary { op, rhs, .. }),
            ..
        } = &m.functions[0].body.stmts[0]
        else {
            panic!()
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn comparison_produces_cmp_binop() {
        let m = parse("int f(double x) { if (x <= 1.0) { return 1; } return 0; }").unwrap();
        let Stmt::If { cond, site, .. } = &m.functions[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(
            cond,
            Expr::Binary {
                op: BinOp::Cmp(Cmp::Le),
                ..
            }
        ));
        assert!(site.is_none(), "site ids are assigned by instrumentation");
    }

    #[test]
    fn single_statement_bodies_are_allowed() {
        let m = parse("double f(double x) { if (x < 0.0) return -x; return x; }").unwrap();
        let Stmt::If { then_block, .. } = &m.functions[0].body.stmts[0] else {
            panic!()
        };
        assert_eq!(then_block.stmts.len(), 1);
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse("double f(double x) { return x }").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
    }

    #[test]
    fn error_on_garbage_statement() {
        let err = parse("double f(double x) { + ; }").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
    }

    #[test]
    fn error_on_unclosed_block() {
        let err = parse("double f(double x) { return x;").unwrap_err();
        assert!(err.message.contains("end of input") || err.message.contains("expected"));
    }

    #[test]
    fn parses_multiple_functions_with_calls() {
        let m = parse(
            r#"
            double square(double x) { return x * x; }
            double foo(double x) {
                if (x <= 1.0) { x = x + 1.0; }
                double y = square(x);
                if (y == -1.0) { return 1.0; }
                return 0.0;
            }
            "#,
        )
        .unwrap();
        assert_eq!(m.functions.len(), 2);
        assert!(m.function("square").is_some());
    }
}
