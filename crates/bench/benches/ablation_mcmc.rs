//! Ablation 4 (DESIGN.md): MCMC parameters — number of Monte-Carlo
//! iterations per start and the perturbation distribution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coverme::{CoverMe, CoverMeConfig};
use coverme_fdlibm::by_name;
use coverme_optim::PerturbationKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mcmc");
    group.sample_size(10);
    let b = by_name("asinh").unwrap();
    for n_iter in [1usize, 5, 15] {
        group.bench_function(format!("n_iter_{n_iter}"), |bench| {
            bench.iter(|| {
                let config = CoverMeConfig::default()
                    .with_n_start(30)
                    .with_n_iter(n_iter)
                    .with_seed(1);
                black_box(CoverMe::new(config).run(&b))
            })
        });
    }
    group.bench_function("gaussian_perturbation", |bench| {
        bench.iter(|| {
            let config = CoverMeConfig::default()
                .with_n_start(30)
                .with_perturbation(PerturbationKind::Gaussian { stddev: 1.0 })
                .with_seed(1);
            black_box(CoverMe::new(config).run(&b))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
