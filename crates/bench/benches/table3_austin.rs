//! Macro-benchmark behind Table 3: the Austin-style baseline on a sample of
//! benchmarks, for the per-benchmark timing comparison with CoverMe.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use coverme_baselines::{AustinConfig, AustinTester};
use coverme_fdlibm::by_name;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_austin_end_to_end");
    group.sample_size(10);
    for name in ["tanh", "logb"] {
        let b = by_name(name).unwrap();
        group.bench_function(name, |bench| {
            bench.iter(|| {
                black_box(
                    AustinTester::new(AustinConfig {
                        max_executions: 5_000,
                        per_target_budget: 500,
                        restarts: 2,
                        time_budget: Some(Duration::from_millis(200)),
                        seed: 3,
                    })
                    .run(&b),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
