//! Benchmarks the unconstrained-programming backends on the paper's Fig. 2
//! objectives and a 2-D Rastrigin function.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coverme_optim::{BasinHopping, CompassSearch, LocalMethod, NelderMead, Powell};

fn fig2b(x: f64) -> f64 {
    if x <= 1.0 {
        ((x + 1.0).powi(2) - 4.0).powi(2)
    } else {
        (x * x - 4.0).powi(2)
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizers");
    group.sample_size(20);
    group.bench_function("powell_fig2b", |b| {
        b.iter(|| {
            let mut f = |p: &[f64]| fig2b(p[0]);
            black_box(Powell::new().minimize(&mut f, &[-8.0]))
        })
    });
    group.bench_function("nelder_mead_fig2b", |b| {
        b.iter(|| {
            let mut f = |p: &[f64]| fig2b(p[0]);
            black_box(NelderMead::new().minimize(&mut f, &[-8.0]))
        })
    });
    group.bench_function("compass_fig2b", |b| {
        b.iter(|| {
            let mut f = |p: &[f64]| fig2b(p[0]);
            black_box(CompassSearch::new().minimize(&mut f, &[-8.0]))
        })
    });
    group.bench_function("basinhopping_fig2b", |b| {
        b.iter(|| {
            let mut f = |p: &[f64]| fig2b(p[0]);
            black_box(
                BasinHopping::new()
                    .iterations(5)
                    .local_method(LocalMethod::Powell)
                    .seed(7)
                    .minimize(&mut f, &[-8.0]),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
