//! Ablation 2/3 (DESIGN.md): saturation vs covered-only pen, and the
//! near-miss polish step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coverme::{CoverMe, CoverMeConfig, PenPolicy};
use coverme_fdlibm::by_name;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pen_policy");
    group.sample_size(10);
    let b = by_name("erf").unwrap();
    group.bench_function("saturation_pen", |bench| {
        bench.iter(|| {
            let config = CoverMeConfig::default().with_n_start(40).with_seed(1);
            black_box(CoverMe::new(config).run(&b))
        })
    });
    group.bench_function("covered_only_pen", |bench| {
        bench.iter(|| {
            let config = CoverMeConfig::default()
                .with_n_start(40)
                .with_pen_policy(PenPolicy::CoveredOnly)
                .with_seed(1);
            black_box(CoverMe::new(config).run(&b))
        })
    });
    group.bench_function("polish_disabled", |bench| {
        bench.iter(|| {
            let config = CoverMeConfig::default()
                .with_n_start(40)
                .with_polish(false)
                .with_seed(1);
            black_box(CoverMe::new(config).run(&b))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
