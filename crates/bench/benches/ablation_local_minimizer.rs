//! Ablation 1 (DESIGN.md): which local minimizer should Basinhopping use?
//! Runs CoverMe on s_tanh with Powell, Nelder-Mead and compass search.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coverme::{CoverMe, CoverMeConfig, LocalMethod};
use coverme_fdlibm::by_name;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_local_minimizer");
    group.sample_size(10);
    let b = by_name("tanh").unwrap();
    for method in [
        LocalMethod::Powell,
        LocalMethod::NelderMead,
        LocalMethod::Compass,
    ] {
        group.bench_function(method.name(), |bench| {
            bench.iter(|| {
                let config = CoverMeConfig::default()
                    .with_n_start(40)
                    .with_local_method(method)
                    .with_seed(1);
                black_box(CoverMe::new(config).run(&b))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
