//! Micro-benchmark: cost of one representing-function evaluation (the unit
//! of work every minimization step pays) on representative benchmarks —
//! the legacy `RepresentingFunction::eval` path next to the objective
//! engine's scalar fast path (distinct inputs, so the engine's cache
//! misses every time; `benches/objective_engine.rs` measures the full
//! throughput picture including batches and cache hits).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coverme::objective::ObjectiveEngine;
use coverme::{BranchSet, RepresentingFunction};
use coverme_fdlibm::by_name;
use coverme_runtime::DEFAULT_EPSILON;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("representing_function_eval");
    group.sample_size(30);
    for name in ["tanh", "pow", "fmod", "erf"] {
        let b = by_name(name).unwrap();
        let foo_r = RepresentingFunction::new(b, BranchSet::new());
        let input = vec![0.37; coverme_runtime::Program::arity(&b)];
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(foo_r.eval(black_box(&input))))
        });

        let mut engine = ObjectiveEngine::new(b, DEFAULT_EPSILON).with_cache(false);
        group.bench_function(format!("{name}/engine"), |bench| {
            bench.iter(|| black_box(engine.eval_scalar(black_box(&input))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
