//! Micro-benchmark: evaluation throughput of the objective engine versus
//! the pre-engine scalar path, on the branch-dense Fdlibm hot functions.
//!
//! Columns:
//!
//! * **legacy** — what `RepresentingFunction::eval` did before the engine
//!   landed: a fresh representing-mode `ExecCtx` per call (cloning the
//!   saturation snapshot), coverage recorded, trace skipped;
//! * **engine** — `ObjectiveEngine::eval_scalar` with the default
//!   `CacheMode::Auto` (reused retargeted context, no coverage; memoized
//!   only for branch-dense programs), on an all-distinct input stream —
//!   the honest floor, since distinct points cannot hit the cache;
//! * **lane** — the same stream through the lane backend
//!   (`Objective::eval_batch`) in chunks of the engine's
//!   `Objective::preferred_batch` (the lane width): deferred-pen
//!   recording per conditional, lockstep finalize per lane group;
//! * **star** — the lane backend fed compass-probe-star-shaped batches of
//!   4 candidates, the smallest batch the engine routes to the lanes
//!   ([`coverme_runtime::MIN_LANE_BATCH`]) and the shape NM/compass submit
//!   on the suite's 2-ary functions;
//! * **hot** — a forced-on cache re-evaluating a small working set, the
//!   shape of polish probes and of Powell re-searching lines from an
//!   unmoved incumbent (real searches measure 16–34% of their calls as
//!   cache hits).
//!
//! A second table covers the FPIR corpus (`examples/fpir/`), where the
//! execution-backend layer has a real choice to make: **interp** and
//! **interp lane** run the AST interpreter (scalar / lane-batched),
//! **tape** and **tape lane** run the compiled instruction tape — the
//! lane column being the true-SIMD path (per-lane tape VMs plus the
//! `resolve_pen_lanes` lockstep finalize). The machine-independent ratios
//! `tape_speedup_vs_interp` and `tape_lane_speedup_vs_interp_lane` feed
//! the CI gate, which additionally enforces an absolute 1.5x floor on the
//! lane ratio — the backend's reason to exist.
//!
//! A third table isolates the SIMD finalize kernels: one real
//! pending-event stream is harvested from `pow` through
//! [`LaneCtx::pending_lanes`] (late-search shape: one open site, so one
//! pen code and comparison), its packed distance kernel
//! ([`coverme_runtime::simd::distance_lanes`], the body of the lane
//! finalize) is timed per ISA on an L1-resident slice of the operands,
//! and the whole stream is re-finalized under every ISA
//! ([`resolve_pen_lanes_with`]) as a bit-identity check. The
//! machine-normalized `simd_speedup_vs_scalar_lane` column — per-ISA
//! kernel throughput over the portable scalar kernel on the same
//! operands — feeds the CI gate, which enforces an absolute 1.3x floor on
//! the AVX2 row plus the usual relative tolerance per ISA.
//!
//! Every measurement is best-of-R with a fresh engine per repetition, so
//! repetitions cannot warm each other's caches.
//!
//! Run modes follow the vendored criterion convention:
//!
//! * `cargo bench -p coverme-bench --bench objective_engine` — measured
//!   run; prints evals/sec per path and the speedups. This feeds the PR
//!   CI's regression gate;
//! * `--json PATH` (after `--bench`) — additionally writes the measured
//!   numbers as `BENCH_objective.json` for `scripts/bench_gate.py`, which
//!   compares the machine-independent speedup ratios against the
//!   committed `ci/bench_baseline.json`;
//! * `cargo test` — single-pass smoke (tiny iteration counts) so the
//!   target cannot rot unnoticed.

use std::hint::black_box;
use std::time::{Duration, Instant};

use coverme::objective::ObjectiveEngine;
use coverme::{BackendMode, BranchId, BranchSet, Objective};
use coverme_fdlibm::by_name;
use coverme_fpir::{compile, IrProgram};
use coverme_runtime::simd::distance_lanes;
use coverme_runtime::{
    pen_code, resolve_pen_lanes_with, Cmp, ExecCtx, LaneCtx, Program, SimdIsa, DEFAULT_EPSILON,
};

/// The benchmarked functions: the suite's most branch-dense members (the
/// auto-cache tier and its runners-up) plus two cheap-but-typical ones so
/// the gate also watches the small-program regime.
const FUNCTIONS: &[&str] = &["pow", "fmod", "expm1", "exp", "tanh", "sin"];

/// The FPIR corpus members benchmarked across the backend axis. `spin` is
/// excluded on purpose: every evaluation burns its whole fuel budget, so
/// it measures the fuel counter, not the backends.
const FPIR_FUNCTIONS: &[&str] = &["newton_sqrt", "sign_juggle"];

/// A half-saturated snapshot: the true branch of every even site. A partly
/// saturated set is the steady state of a real search and keeps `pen` on
/// its general path (the empty snapshot short-circuits to 0 everywhere).
fn snapshot(num_sites: usize) -> BranchSet {
    let mut set = BranchSet::with_sites(num_sites);
    for site in (0..num_sites).step_by(2) {
        set.insert(BranchId::true_of(site as u32));
    }
    set
}

/// A spread of inputs covering the exponent range the search actually
/// explores (the default starting-point box is ±100, perturbations ±0.5).
fn inputs(arity: usize, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            (0..arity)
                .map(|j| {
                    let t = (i * arity + j) as f64;
                    (t * 0.7297).sin() * 100.0 + (t * 0.013).cos()
                })
                .collect()
        })
        .collect()
}

/// Best-of-`reps` wall time of one pass of `routine` (fresh state per rep
/// comes from the `setup` closure).
fn best_of<S, F: FnMut(&mut S)>(
    reps: usize,
    mut setup: impl FnMut() -> S,
    mut routine: F,
) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let mut state = setup();
        let start = Instant::now();
        routine(&mut state);
        best = best.min(start.elapsed());
    }
    best
}

/// Per-function measurement row, also serialized into the JSON artifact.
struct Row {
    name: &'static str,
    sites: usize,
    legacy: f64,
    engine: f64,
    lane: f64,
    star: f64,
    hot: f64,
}

impl Row {
    fn engine_speedup(&self) -> f64 {
        self.engine / self.legacy.max(1e-12)
    }

    fn lane_speedup(&self) -> f64 {
        self.lane / self.engine.max(1e-12)
    }

    fn star_speedup(&self) -> f64 {
        self.star / self.engine.max(1e-12)
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"function\": \"{}\",\n",
                "      \"sites\": {},\n",
                "      \"legacy_evals_per_sec\": {:.0},\n",
                "      \"engine_evals_per_sec\": {:.0},\n",
                "      \"lane_evals_per_sec\": {:.0},\n",
                "      \"star_evals_per_sec\": {:.0},\n",
                "      \"hot_evals_per_sec\": {:.0},\n",
                "      \"engine_speedup_vs_legacy\": {:.4},\n",
                "      \"lane_speedup_vs_engine\": {:.4},\n",
                "      \"star_speedup_vs_engine\": {:.4}\n",
                "    }}"
            ),
            self.name,
            self.sites,
            self.legacy,
            self.engine,
            self.lane,
            self.star,
            self.hot,
            self.engine_speedup(),
            self.lane_speedup(),
            self.star_speedup(),
        )
    }
}

fn measure(name: &'static str, measure_mode: bool) -> Row {
    let benchmark = by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let sites = Program::num_sites(&benchmark);
    let saturated = snapshot(sites);
    let epsilon = DEFAULT_EPSILON;
    let (point_count, reps) = if measure_mode { (40_000, 7) } else { (64, 1) };
    let points = inputs(Program::arity(&benchmark), point_count);
    let evs = |d: Duration, n: usize| n as f64 / d.as_secs_f64().max(1e-12);

    // Pre-engine scalar path: fresh context + snapshot clone + coverage
    // recording per evaluation.
    let legacy = evs(
        best_of(
            reps,
            || (),
            |_| {
                let mut sink = 0.0;
                for x in &points {
                    let mut ctx = ExecCtx::representing(saturated.clone())
                        .with_epsilon(epsilon)
                        .without_trace();
                    benchmark.execute(black_box(x), &mut ctx);
                    sink += ctx.representing_value();
                }
                black_box(sink);
            },
        ),
        points.len(),
    );

    // Engine fast path, default (Auto) cache policy, all-distinct points:
    // the miss path is the whole story.
    let fresh_engine = || {
        let mut engine = ObjectiveEngine::new(&benchmark, epsilon);
        engine.retarget(&saturated);
        engine
    };
    let engine = evs(
        best_of(reps, fresh_engine, |engine| {
            let mut sink = 0.0;
            for x in &points {
                sink += engine.eval_scalar(black_box(x));
            }
            black_box(sink);
        }),
        points.len(),
    );

    // Lane path: the same stream chunked at the engine's preferred batch
    // granularity (the lane width) — the chunk size a free batch producer
    // should pick.
    let lane = evs(
        best_of(reps, fresh_engine, |engine| {
            let chunk_size = engine.preferred_batch();
            let mut values = Vec::with_capacity(chunk_size);
            for chunk in points.chunks(chunk_size) {
                values.clear();
                engine.eval_batch(chunk, &mut values);
                black_box(&values);
            }
        }),
        points.len(),
    );

    // Probe-star shape: batches of 4, the smallest lane-dispatched batch.
    let star = evs(
        best_of(reps, fresh_engine, |engine| {
            let mut values = Vec::with_capacity(4);
            for chunk in points.chunks(4) {
                values.clear();
                engine.eval_batch(chunk, &mut values);
                black_box(&values);
            }
        }),
        points.len(),
    );

    // Hot working set through a forced-on cache: almost every call is a
    // hit after the first pass.
    let hot_set: Vec<Vec<f64>> = points.iter().take(8).cloned().collect();
    let hot_passes = if measure_mode { 2000 } else { 4 };
    let hot = evs(
        best_of(
            reps,
            || {
                let mut engine = ObjectiveEngine::new(&benchmark, epsilon).with_cache(true);
                engine.retarget(&saturated);
                engine
            },
            |engine| {
                let mut sink = 0.0;
                for _ in 0..hot_passes {
                    for x in &hot_set {
                        sink += engine.eval_scalar(black_box(x));
                    }
                }
                black_box(sink);
            },
        ),
        hot_set.len() * hot_passes,
    );

    // Whatever the timings, the paths must agree bit for bit.
    let mut check_engine = ObjectiveEngine::new(&benchmark, epsilon).with_cache(true);
    check_engine.retarget(&saturated);
    let mut lane_engine = ObjectiveEngine::new(&benchmark, epsilon).with_cache(false);
    lane_engine.retarget(&saturated);
    let mut lane_values = Vec::new();
    lane_engine.eval_lanes(&points[..16.min(points.len())], &mut lane_values);
    for (x, lane_value) in points.iter().zip(&lane_values) {
        let mut ctx = ExecCtx::representing(saturated.clone())
            .with_epsilon(epsilon)
            .without_trace();
        benchmark.execute(x, &mut ctx);
        assert_eq!(
            check_engine.eval_scalar(x).to_bits(),
            ctx.representing_value().to_bits(),
            "engine diverged from the legacy path on {name} at {x:?}"
        );
        assert_eq!(
            lane_value.to_bits(),
            ctx.representing_value().to_bits(),
            "lane path diverged from the legacy path on {name} at {x:?}"
        );
    }

    Row {
        name,
        sites,
        legacy,
        engine,
        lane,
        star,
        hot,
    }
}

/// Loads one FPIR corpus program (entry inferred from the file stem, the
/// CLI's rule).
fn load_fpir(name: &str) -> IrProgram {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/fpir")
        .join(format!("{name}.fpir"));
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"));
    compile(&source, name).unwrap_or_else(|e| panic!("{path:?}: {e}"))
}

/// Per-FPIR-program measurement row across the backend axis.
struct FpirRow {
    name: &'static str,
    sites: usize,
    interp: f64,
    interp_lane: f64,
    tape: f64,
    tape_lane: f64,
}

impl FpirRow {
    fn tape_speedup(&self) -> f64 {
        self.tape / self.interp.max(1e-12)
    }

    fn tape_lane_speedup(&self) -> f64 {
        self.tape_lane / self.interp_lane.max(1e-12)
    }

    /// The SIMD-finalize gain: lane-batched tape over scalar tape.
    fn simd_finalize_speedup(&self) -> f64 {
        self.tape_lane / self.tape.max(1e-12)
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"function\": \"{}\",\n",
                "      \"sites\": {},\n",
                "      \"interp_evals_per_sec\": {:.0},\n",
                "      \"interp_lane_evals_per_sec\": {:.0},\n",
                "      \"tape_evals_per_sec\": {:.0},\n",
                "      \"tape_lane_evals_per_sec\": {:.0},\n",
                "      \"tape_speedup_vs_interp\": {:.4},\n",
                "      \"tape_lane_speedup_vs_interp_lane\": {:.4},\n",
                "      \"simd_finalize_speedup\": {:.4}\n",
                "    }}"
            ),
            self.name,
            self.sites,
            self.interp,
            self.interp_lane,
            self.tape,
            self.tape_lane,
            self.tape_speedup(),
            self.tape_lane_speedup(),
            self.simd_finalize_speedup(),
        )
    }
}

fn measure_fpir(name: &'static str, measure_mode: bool) -> FpirRow {
    let program = load_fpir(name);
    let sites = program.num_sites();
    let saturated = snapshot(sites);
    let epsilon = DEFAULT_EPSILON;
    let (point_count, reps) = if measure_mode { (8_000, 7) } else { (64, 1) };
    let points = inputs(program.arity(), point_count);
    let evs = |d: Duration, n: usize| n as f64 / d.as_secs_f64().max(1e-12);

    let fresh = |mode: BackendMode| {
        let program = load_fpir(name);
        let saturated = saturated.clone();
        move || {
            let mut engine = ObjectiveEngine::new(program.clone(), epsilon)
                .with_cache(false)
                .backend_mode(mode);
            engine.retarget(&saturated);
            engine
        }
    };
    let scalar_pass = |engine: &mut ObjectiveEngine<IrProgram>| {
        let mut sink = 0.0;
        for x in &points {
            sink += engine.eval_scalar(black_box(x));
        }
        black_box(sink);
    };
    let lane_pass = |engine: &mut ObjectiveEngine<IrProgram>| {
        let chunk_size = engine.preferred_batch();
        let mut values = Vec::with_capacity(chunk_size);
        for chunk in points.chunks(chunk_size) {
            values.clear();
            engine.eval_batch(chunk, &mut values);
            black_box(&values);
        }
    };

    let interp = evs(
        best_of(reps, fresh(BackendMode::Interp), scalar_pass),
        points.len(),
    );
    let interp_lane = evs(
        best_of(reps, fresh(BackendMode::Interp), lane_pass),
        points.len(),
    );
    let tape = evs(
        best_of(reps, fresh(BackendMode::Tape), scalar_pass),
        points.len(),
    );
    let tape_lane = evs(
        best_of(reps, fresh(BackendMode::Tape), lane_pass),
        points.len(),
    );

    // Whatever the timings, the backends must agree bit for bit.
    let mut tape_engine = fresh(BackendMode::Tape)();
    let mut interp_engine = fresh(BackendMode::Interp)();
    assert_eq!(tape_engine.backend_name(), "tape", "{name}: no tape");
    let mut tape_values = Vec::new();
    tape_engine.eval_lanes(&points[..16.min(points.len())], &mut tape_values);
    for (x, tape_value) in points.iter().zip(&tape_values) {
        assert_eq!(
            tape_value.to_bits(),
            interp_engine.eval_scalar(x).to_bits(),
            "tape lane path diverged from the interpreter on {name} at {x:?}"
        );
    }

    FpirRow {
        name,
        sites,
        interp,
        interp_lane,
        tape,
        tape_lane,
    }
}

/// A harvested pending-event stream (SoA), the input to the finalize
/// kernels.
struct EventStream {
    codes: Vec<u8>,
    ops: Vec<Cmp>,
    lhs: Vec<f64>,
    rhs: Vec<f64>,
}

/// Harvests `count` real pending-penalty events by recording `pow` (the
/// suite's most branch-dense function) through a [`LaneCtx`] against the
/// late-search snapshot: every site fully saturated except the true side
/// of site 0. This is the steady state the packed kernels target — a
/// converged search spends its rounds chasing the last open branches, so
/// the lanes of a batch agree on the surviving site (uniform chunks, the
/// `distance_lanes` fast path) while the operands still vary per lane.
/// Divergent mid-search batches fall back to the scalar per-lane resolve
/// on every ISA identically, so they would only dilute the kernel
/// comparison this table exists to make.
fn harvest_events(count: usize) -> EventStream {
    let benchmark = by_name("pow").expect("pow is in the suite");
    let sites = Program::num_sites(&benchmark);
    let mut saturated = BranchSet::with_sites(sites);
    for site in 0..sites {
        if site > 0 {
            saturated.insert(BranchId::true_of(site as u32));
        }
        saturated.insert(BranchId::false_of(site as u32));
    }
    let points = inputs(Program::arity(&benchmark), count);
    let mut lane = LaneCtx::new(saturated).with_epsilon(DEFAULT_EPSILON);
    let mut stream = EventStream {
        codes: Vec::with_capacity(count),
        ops: Vec::with_capacity(count),
        lhs: Vec::with_capacity(count),
        rhs: Vec::with_capacity(count),
    };
    let mut scratch = Vec::new();
    for chunk in points.chunks(lane.width()) {
        for point in chunk {
            lane.record(&benchmark, point);
        }
        let (codes, ops, lhs, rhs) = lane.pending_lanes();
        stream.codes.extend_from_slice(codes);
        stream.ops.extend_from_slice(ops);
        stream.lhs.extend_from_slice(lhs);
        stream.rhs.extend_from_slice(rhs);
        scratch.clear();
        lane.finalize_into(&mut scratch);
    }
    stream
}

/// Per-ISA finalize-kernel measurement row. `speedup` is throughput over
/// the portable scalar finalize on the same event stream — the
/// machine-normalized `simd_speedup_vs_scalar_lane` column the CI gate
/// watches (absolute 1.3x floor on the AVX2 row).
struct SimdRow {
    isa: &'static str,
    lane_width: usize,
    events_per_sec: f64,
    speedup: f64,
}

impl SimdRow {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"isa\": \"{}\",\n",
                "      \"lane_width\": {},\n",
                "      \"finalize_events_per_sec\": {:.0},\n",
                "      \"simd_speedup_vs_scalar_lane\": {:.4}\n",
                "    }}"
            ),
            self.isa, self.lane_width, self.events_per_sec, self.speedup,
        )
    }
}

/// Times each ISA's packed distance kernel ([`distance_lanes`], the body
/// of the lane finalize) on the harvested operand stream, normalized to
/// the portable scalar kernel on the same operands — plus the
/// non-negotiable cross-ISA bit-identity check over the full
/// [`resolve_pen_lanes_with`] dispatch.
///
/// The timed slice is kept L1-resident (1024 events ≈ 24 KiB of
/// lhs/rhs/out) so the column measures the kernel the ISA actually
/// changes, not the memory system: at full-stream sizes every ISA
/// converges on cache bandwidth and the ratio reads ~1.0 no matter what
/// the vector units do.
fn measure_simd(measure_mode: bool) -> Vec<SimdRow> {
    let events = if measure_mode { 4096 } else { 256 };
    let (passes, reps) = if measure_mode { (20_000, 7) } else { (4, 1) };
    let stream = harvest_events(events);
    let n = stream.codes.len();

    // The harvest chases one open site, so the stream carries one pen code
    // and one comparison — the uniform-run shape the packed kernel serves.
    let code = stream.codes[0];
    let op = stream.ops[0];
    assert!(
        stream.codes.iter().all(|&c| c == code) && stream.ops.iter().all(|&o| o == op),
        "harvested stream is not uniform; the kernel timing would be meaningless"
    );
    let kernel_op = match code {
        pen_code::FALSE_SATURATED => op,
        pen_code::TRUE_SATURATED => op.negate(),
        other => panic!("harvest produced non-distance pen code {other}"),
    };

    let timed = n.min(1024);
    let lhs = &stream.lhs[..timed];
    let rhs = &stream.rhs[..timed];
    let throughput_of = |isa: SimdIsa| {
        let elapsed = best_of(
            reps,
            || vec![0.0; timed],
            |out: &mut Vec<f64>| {
                for _ in 0..passes {
                    distance_lanes(isa, kernel_op, lhs, rhs, DEFAULT_EPSILON, out);
                    black_box(out.last());
                }
            },
        );
        (timed * passes) as f64 / elapsed.as_secs_f64().max(1e-12)
    };

    let portable = throughput_of(SimdIsa::Portable);
    let mut reference = Vec::new();
    resolve_pen_lanes_with(
        SimdIsa::Portable,
        &stream.codes,
        &stream.ops,
        &stream.lhs,
        &stream.rhs,
        DEFAULT_EPSILON,
        &mut reference,
    );

    SimdIsa::supported()
        .into_iter()
        .map(|isa| {
            let events_per_sec = if isa == SimdIsa::Portable {
                portable
            } else {
                throughput_of(isa)
            };
            // Whatever the timings, every ISA must finalize to the same bits.
            let mut values = Vec::new();
            resolve_pen_lanes_with(
                isa,
                &stream.codes,
                &stream.ops,
                &stream.lhs,
                &stream.rhs,
                DEFAULT_EPSILON,
                &mut values,
            );
            for (k, (v, r)) in values.iter().zip(&reference).enumerate() {
                assert_eq!(
                    v.to_bits(),
                    r.to_bits(),
                    "{isa} finalize diverged from portable at event {k}"
                );
            }
            SimdRow {
                isa: isa.label(),
                lane_width: isa.lane_width(),
                events_per_sec,
                speedup: events_per_sec / portable.max(1e-12),
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let measure_mode = args.iter().any(|a| a == "--bench");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());

    println!(
        "{:<8} {:>6} {:>13} {:>13} {:>13} {:>13} {:>13} {:>9} {:>9}",
        "function",
        "sites",
        "legacy ev/s",
        "engine ev/s",
        "lane ev/s",
        "star ev/s",
        "hot ev/s",
        "engine x",
        "lane x"
    );

    let mut rows = Vec::new();
    for name in FUNCTIONS {
        let row = measure(name, measure_mode);
        println!(
            "{:<8} {:>6} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>8.2}x {:>8.2}x",
            row.name,
            row.sites,
            row.legacy,
            row.engine,
            row.lane,
            row.star,
            row.hot,
            row.engine_speedup(),
            row.lane_speedup(),
        );
        rows.push(row);
    }

    println!();
    println!(
        "{:<12} {:>6} {:>13} {:>15} {:>13} {:>15} {:>8} {:>11}",
        "fpir",
        "sites",
        "interp ev/s",
        "interp lane",
        "tape ev/s",
        "tape lane",
        "tape x",
        "tape lane x"
    );

    let mut fpir_rows = Vec::new();
    for name in FPIR_FUNCTIONS {
        let row = measure_fpir(name, measure_mode);
        println!(
            "{:<12} {:>6} {:>13.0} {:>15.0} {:>13.0} {:>15.0} {:>7.2}x {:>10.2}x",
            row.name,
            row.sites,
            row.interp,
            row.interp_lane,
            row.tape,
            row.tape_lane,
            row.tape_speedup(),
            row.tape_lane_speedup(),
        );
        fpir_rows.push(row);
    }

    println!();
    println!(
        "{:<10} {:>10} {:>18} {:>22}   (active: {})",
        "simd",
        "lanes",
        "finalize ev/s",
        "speedup vs scalar",
        SimdIsa::active(),
    );
    let simd_rows = measure_simd(measure_mode);
    for row in &simd_rows {
        println!(
            "{:<10} {:>10} {:>18.0} {:>21.2}x",
            row.isa, row.lane_width, row.events_per_sec, row.speedup,
        );
    }

    if let Some(path) = json_path {
        let body: Vec<String> = rows.iter().map(Row::to_json).collect();
        let fpir_body: Vec<String> = fpir_rows.iter().map(FpirRow::to_json).collect();
        let simd_body: Vec<String> = simd_rows.iter().map(SimdRow::to_json).collect();
        let json = format!(
            "{{\n  \"schema\": 2,\n  \"bench\": \"objective_engine\",\n  \"measured\": {},\n  \"functions\": [\n{}\n  ],\n  \"fpir\": [\n{}\n  ],\n  \"simd\": [\n{}\n  ]\n}}\n",
            measure_mode,
            body.join(",\n"),
            fpir_body.join(",\n"),
            simd_body.join(",\n")
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    if !measure_mode {
        println!("(smoke mode: timings above are not meaningful; run with cargo bench)");
    }
}
