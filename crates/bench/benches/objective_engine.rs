//! Micro-benchmark: evaluation throughput of the objective engine versus
//! the pre-engine scalar path, on the branch-dense Fdlibm hot functions.
//!
//! Columns:
//!
//! * **legacy** — what `RepresentingFunction::eval` did before the engine
//!   landed: a fresh representing-mode `ExecCtx` per call (cloning the
//!   saturation snapshot), coverage recorded, trace skipped;
//! * **engine** — `ObjectiveEngine::eval_scalar` with the default
//!   `CacheMode::Auto` (reused retargeted context, no coverage; memoized
//!   only for branch-dense programs), on an all-distinct input stream —
//!   the honest floor, since distinct points cannot hit the cache;
//! * **batch** — the same stream through `Objective::eval_batch` in
//!   chunks of 64;
//! * **hot** — a forced-on cache re-evaluating a small working set, the
//!   shape of polish probes and of Powell re-searching lines from an
//!   unmoved incumbent (real searches measure 16–34% of their calls as
//!   cache hits).
//!
//! Every measurement is best-of-R with a fresh engine per repetition, so
//! repetitions cannot warm each other's caches.
//!
//! Run modes follow the vendored criterion convention:
//!
//! * `cargo bench -p coverme-bench --bench objective_engine` — measured
//!   run; prints evals/sec per path and the engine/legacy speedup. This is
//!   the PR smoke gate for regressions in the evaluation hot path.
//! * `cargo test` — single-pass smoke (tiny iteration counts) so the
//!   target cannot rot unnoticed.

use std::hint::black_box;
use std::time::{Duration, Instant};

use coverme::objective::ObjectiveEngine;
use coverme::{BranchId, BranchSet, Objective};
use coverme_fdlibm::by_name;
use coverme_runtime::{ExecCtx, Program, DEFAULT_EPSILON};

/// A half-saturated snapshot: the true branch of every even site. A partly
/// saturated set is the steady state of a real search and keeps `pen` on
/// its general path (the empty snapshot short-circuits to 0 everywhere).
fn snapshot(num_sites: usize) -> BranchSet {
    let mut set = BranchSet::with_sites(num_sites);
    for site in (0..num_sites).step_by(2) {
        set.insert(BranchId::true_of(site as u32));
    }
    set
}

/// A spread of inputs covering the exponent range the search actually
/// explores (the default starting-point box is ±100, perturbations ±0.5).
fn inputs(arity: usize, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            (0..arity)
                .map(|j| {
                    let t = (i * arity + j) as f64;
                    (t * 0.7297).sin() * 100.0 + (t * 0.013).cos()
                })
                .collect()
        })
        .collect()
}

/// Best-of-`reps` wall time of one pass of `routine` (fresh state per rep
/// comes from the `setup` closure).
fn best_of<S, F: FnMut(&mut S)>(reps: usize, mut setup: impl FnMut() -> S, mut routine: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let mut state = setup();
        let start = Instant::now();
        routine(&mut state);
        best = best.min(start.elapsed());
    }
    best
}

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    let (point_count, reps) = if measure { (40_000, 7) } else { (64, 1) };

    println!(
        "{:<8} {:>13} {:>13} {:>13} {:>13} {:>9}",
        "function", "legacy ev/s", "engine ev/s", "batch ev/s", "hot ev/s", "speedup"
    );

    for name in ["pow", "sin", "tan", "tanh", "exp"] {
        let benchmark = by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let saturated = snapshot(Program::num_sites(&benchmark));
        let epsilon = DEFAULT_EPSILON;
        let points = inputs(Program::arity(&benchmark), point_count);
        let evs = |d: Duration, n: usize| n as f64 / d.as_secs_f64().max(1e-12);

        // Pre-engine scalar path: fresh context + snapshot clone +
        // coverage recording per evaluation.
        let legacy = evs(
            best_of(reps, || (), |_| {
                let mut sink = 0.0;
                for x in &points {
                    let mut ctx = ExecCtx::representing(saturated.clone())
                        .with_epsilon(epsilon)
                        .without_trace();
                    benchmark.execute(black_box(x), &mut ctx);
                    sink += ctx.representing_value();
                }
                black_box(sink);
            }),
            points.len(),
        );

        // Engine fast path, default (Auto) cache policy, all-distinct
        // points: the miss path is the whole story.
        let fresh_engine = || {
            let mut engine = ObjectiveEngine::new(&benchmark, epsilon);
            engine.retarget(&saturated);
            engine
        };
        let engine = evs(
            best_of(reps, fresh_engine, |engine| {
                let mut sink = 0.0;
                for x in &points {
                    sink += engine.eval_scalar(black_box(x));
                }
                black_box(sink);
            }),
            points.len(),
        );

        // Batch path: the same stream submitted in chunks of 64.
        let batch = evs(
            best_of(reps, fresh_engine, |engine| {
                let mut values = Vec::with_capacity(64);
                for chunk in points.chunks(64) {
                    values.clear();
                    engine.eval_batch(chunk, &mut values);
                    black_box(&values);
                }
            }),
            points.len(),
        );

        // Hot working set through a forced-on cache: almost every call is
        // a hit after the first pass.
        let hot_set: Vec<Vec<f64>> = points.iter().take(8).cloned().collect();
        let hot_passes = if measure { 2000 } else { 4 };
        let hot = evs(
            best_of(
                reps,
                || {
                    let mut engine =
                        ObjectiveEngine::new(&benchmark, epsilon).with_cache(true);
                    engine.retarget(&saturated);
                    engine
                },
                |engine| {
                    let mut sink = 0.0;
                    for _ in 0..hot_passes {
                        for x in &hot_set {
                            sink += engine.eval_scalar(black_box(x));
                        }
                    }
                    black_box(sink);
                },
            ),
            hot_set.len() * hot_passes,
        );

        println!(
            "{:<8} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>8.2}x",
            name,
            legacy,
            engine,
            batch,
            hot,
            engine / legacy.max(1e-12),
        );

        // Whatever the timings, the paths must agree bit for bit.
        let mut check_engine = ObjectiveEngine::new(&benchmark, epsilon).with_cache(true);
        check_engine.retarget(&saturated);
        for x in points.iter().take(16) {
            let mut ctx = ExecCtx::representing(saturated.clone())
                .with_epsilon(epsilon)
                .without_trace();
            benchmark.execute(x, &mut ctx);
            assert_eq!(
                check_engine.eval_scalar(x).to_bits(),
                ctx.representing_value().to_bits(),
                "engine diverged from the legacy path on {name} at {x:?}"
            );
        }
    }

    if !measure {
        println!("(smoke mode: timings above are not meaningful; run with cargo bench)");
    }
}
