//! Executions-per-second of the Rand and AFL baselines (their budgets in the
//! paper are time based, so raw throughput determines how many inputs they
//! get to try).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use coverme_baselines::{AflConfig, AflFuzzer, RandomConfig, RandomTester};
use coverme_fdlibm::by_name;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines_throughput");
    group.sample_size(10);
    let b = by_name("tanh").unwrap();
    group.bench_function("rand_1000_executions", |bench| {
        bench.iter(|| {
            black_box(
                RandomTester::new(RandomConfig {
                    max_executions: 1_000,
                    time_budget: Some(Duration::from_secs(5)),
                    ..RandomConfig::default()
                })
                .run(&b),
            )
        })
    });
    group.bench_function("afl_1000_executions", |bench| {
        bench.iter(|| {
            black_box(
                AflFuzzer::new(AflConfig {
                    max_executions: 1_000,
                    time_budget: Some(Duration::from_secs(5)),
                    ..AflConfig::default()
                })
                .run(&b),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
