//! Regenerates Table 2 (and the Fig. 5 series): CoverMe vs Rand vs AFL
//! branch coverage on the 40 Fdlibm benchmark functions.
//!
//! Usage: `table2_branch_coverage [--format table|series] [benchmark ...]`
//! Set `COVERME_FULL=1` for the paper's full budgets, and `COVERME_SHARDS=N`
//! to split each function's `n_start` budget across N shard units of the
//! campaign schedule (deterministic per shard count), with
//! `COVERME_SYNC_EPOCHS=E` to sync saturation across those shards at E
//! deterministic epoch barriers.

use coverme_bench::{
    mean, pct, run_afl, run_campaign, run_rand, shards_from_env, sync_epochs_from_env,
    HarnessBudget,
};
use coverme_fdlibm::{all, by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let series = args.iter().any(|a| a == "--format") && args.iter().any(|a| a == "series");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.as_str() != "table" && a.as_str() != "series")
        .cloned()
        .collect();
    let budget = HarnessBudget::from_env();

    let benchmarks = if selected.is_empty() {
        all()
    } else {
        selected.iter().filter_map(|name| by_name(name)).collect()
    };

    if !series {
        println!(
            "{:<22} {:>9} {:>10} {:>9} {:>9} {:>9} {:>11} {:>11}",
            "Function",
            "#Branches",
            "Time(s)",
            "Rand(%)",
            "AFL(%)",
            "CoverMe(%)",
            "vs Rand",
            "vs AFL"
        );
    }
    let mut rand_pcts = Vec::new();
    let mut afl_pcts = Vec::new();
    let mut coverme_pcts = Vec::new();
    let mut times = Vec::new();

    // The CoverMe column runs as one parallel campaign (per-function seeds,
    // results in benchmark order); the baselines then run per benchmark with
    // their budgets derived from each function's CoverMe time, as in the
    // paper.
    let campaign = run_campaign(
        &benchmarks,
        budget,
        2024,
        shards_from_env(),
        sync_epochs_from_env(),
    );
    for (b, result) in benchmarks.iter().zip(&campaign.results) {
        let coverme = result.report.as_ref().expect("campaign has no time budget");
        let rand = run_rand(b, budget, coverme.wall_time, 2024);
        let afl = run_afl(b, budget, coverme.wall_time, 2024);
        let cm = coverme.branch_coverage_percent();
        let rd = rand.branch_coverage_percent();
        let af = afl.branch_coverage_percent();
        rand_pcts.push(rd);
        afl_pcts.push(af);
        coverme_pcts.push(cm);
        times.push(coverme.wall_time.as_secs_f64());
        if series {
            println!("{} {} {} {}", b.name, pct(rd), pct(af), pct(cm));
        } else {
            println!(
                "{:<22} {:>9} {:>10.2} {:>9} {:>9} {:>9} {:>11} {:>11}",
                b.name,
                2 * b.sites,
                coverme.wall_time.as_secs_f64(),
                pct(rd),
                pct(af),
                pct(cm),
                pct(cm - rd),
                pct(cm - af)
            );
        }
    }
    if !series {
        println!(
            "{:<22} {:>9} {:>10.2} {:>9} {:>9} {:>9} {:>11} {:>11}",
            "MEAN",
            "",
            mean(times.iter().copied()),
            pct(mean(rand_pcts.iter().copied())),
            pct(mean(afl_pcts.iter().copied())),
            pct(mean(coverme_pcts.iter().copied())),
            pct(mean(coverme_pcts.iter().copied()) - mean(rand_pcts.iter().copied())),
            pct(mean(coverme_pcts.iter().copied()) - mean(afl_pcts.iter().copied()))
        );
    }
}
