//! Regenerates the Sect. D incompleteness study: why CoverMe misses branches
//! in k_cos.c (a genuinely infeasible branch) and e_fmod.c (subnormal-only
//! branches the default sampling never produces).

use coverme_bench::{run_coverme, HarnessBudget};
use coverme_fdlibm::by_name;

fn main() {
    let budget = HarnessBudget::from_env();
    for name in ["kernel_cos", "fmod"] {
        let b = by_name(name).expect("benchmark exists");
        let report = run_coverme(&b, budget, 3);
        println!("== {name} ==");
        println!(
            "branch coverage: {:.1}% ({} / {} branches), {} deemed infeasible",
            report.branch_coverage_percent(),
            report.coverage.covered_count(),
            report.coverage.total_branches(),
            report.infeasible.len()
        );
        let uncovered: Vec<String> = report
            .coverage
            .uncovered_branches()
            .map(|b| b.to_string())
            .collect();
        println!("uncovered branches: {}", uncovered.join(", "));
        println!();
    }
    println!("k_cos.c: the false side of `((int) x) == 0` under |x| < 2^-27 is infeasible;");
    println!("e_fmod.c: the subnormal-normalization loops need subnormal inputs, which the");
    println!("default uniform starting-point distribution essentially never produces.");
}
