//! Regenerates the Table 1 scenario: how CoverMe saturates all branches of
//! the Fig. 3 example by repeatedly minimizing the representing function.

// The paper's running example really is named FOO; keep the name.
#![allow(clippy::disallowed_names)]

use coverme::{CoverMe, CoverMeConfig, RoundOutcome};
use coverme_runtime::{Cmp, ExecCtx, FnProgram};

fn main() {
    let foo = FnProgram::new("FOO", 1, 2, |input: &[f64], ctx: &mut ExecCtx| {
        let mut x = input[0];
        if ctx.branch(0, Cmp::Le, x, 1.0) {
            x += 2.5;
        }
        let y = x * x;
        if ctx.branch(1, Cmp::Eq, y, 4.0) {
            // the hard-to-hit branch
        }
    });

    let report = CoverMe::new(CoverMeConfig::default().with_n_start(40).with_seed(1)).run(&foo);
    println!("# Saturate-before  minimum x*        FOO_R(x*)   outcome         X so far");
    let mut inputs_so_far = 0usize;
    for round in &report.rounds {
        if matches!(round.outcome, RoundOutcome::NewInput) {
            inputs_so_far += 1;
        }
        println!(
            "{:<2} {:>14} {:>16.6} {:>11.3e}   {:<14} {} inputs",
            round.round + 1,
            round.saturated_before,
            round.minimum[0],
            round.value,
            format!("{:?}", round.outcome),
            inputs_so_far
        );
    }
    println!("\n{report}");
    println!("Generated inputs: {:?}", report.inputs);
}
