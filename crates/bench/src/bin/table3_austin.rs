//! Regenerates Table 3: CoverMe vs Austin (time, branch coverage, speedup).
//! Set `COVERME_FULL=1` for the paper's full budgets.

use coverme_bench::{mean, pct, run_austin, run_coverme, HarnessBudget};
use coverme_fdlibm::{all, by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = HarnessBudget::from_env();
    let benchmarks = if args.is_empty() {
        all()
    } else {
        args.iter().filter_map(|name| by_name(name)).collect()
    };

    println!(
        "{:<22} {:>12} {:>12} {:>10} {:>11} {:>9} {:>12}",
        "Function", "Austin(s)", "CoverMe(s)", "Austin(%)", "CoverMe(%)", "Speedup", "Coverage(+%)"
    );
    let mut austin_pcts = Vec::new();
    let mut coverme_pcts = Vec::new();
    let mut speedups = Vec::new();
    for b in &benchmarks {
        let coverme = run_coverme(b, budget, 77);
        let austin = run_austin(b, budget, 77);
        let cm = coverme.branch_coverage_percent();
        let au = austin.branch_coverage_percent();
        let speedup = austin.wall_time.as_secs_f64() / coverme.wall_time.as_secs_f64().max(1e-9);
        austin_pcts.push(au);
        coverme_pcts.push(cm);
        speedups.push(speedup);
        println!(
            "{:<22} {:>12.3} {:>12.3} {:>10} {:>11} {:>9.1} {:>12}",
            b.name,
            austin.wall_time.as_secs_f64(),
            coverme.wall_time.as_secs_f64(),
            pct(au),
            pct(cm),
            speedup,
            pct(cm - au)
        );
    }
    println!(
        "{:<22} {:>12} {:>12} {:>10} {:>11} {:>9.1} {:>12}",
        "MEAN",
        "",
        "",
        pct(mean(austin_pcts.iter().copied())),
        pct(mean(coverme_pcts.iter().copied())),
        mean(speedups.iter().copied()),
        pct(mean(coverme_pcts.iter().copied()) - mean(austin_pcts.iter().copied()))
    );
}
