//! Regenerates Table 5: line coverage (block-coverage proxy for the native
//! ports) for CoverMe vs Rand vs AFL.

use coverme_bench::{mean, pct, run_afl, run_coverme, run_rand, HarnessBudget};
use coverme_fdlibm::{all, by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = HarnessBudget::from_env();
    let benchmarks = if args.is_empty() {
        all()
    } else {
        args.iter().filter_map(|name| by_name(name)).collect()
    };

    println!(
        "{:<22} {:>7} {:>10} {:>9} {:>12}",
        "Function", "#Lines", "Rand(%)", "AFL(%)", "CoverMe(%)"
    );
    let (mut r, mut a, mut c) = (Vec::new(), Vec::new(), Vec::new());
    for b in &benchmarks {
        let coverme = run_coverme(b, budget, 5);
        let rand = run_rand(b, budget, coverme.wall_time, 5);
        let afl = run_afl(b, budget, coverme.wall_time, 5);
        let cm = coverme.coverage.block_coverage_percent();
        let rd = rand.block_coverage_percent();
        let af = afl.block_coverage_percent();
        r.push(rd);
        a.push(af);
        c.push(cm);
        println!(
            "{:<22} {:>7} {:>10} {:>9} {:>12}",
            b.name,
            b.paper_lines,
            pct(rd),
            pct(af),
            pct(cm)
        );
    }
    println!(
        "{:<22} {:>7} {:>10} {:>9} {:>12}",
        "MEAN",
        "",
        pct(mean(r)),
        pct(mean(a)),
        pct(mean(c))
    );
}
