//! Regenerates Table 5: line coverage (block-coverage proxy for the native
//! ports) for CoverMe vs Rand vs AFL. Set `COVERME_FULL=1` for the paper's
//! full budgets and `COVERME_SHARDS=N` to shard each function's search
//! (`COVERME_SYNC_EPOCHS=E` syncs saturation across shards at E barriers).

use coverme_bench::{
    mean, pct, run_afl, run_campaign, run_rand, shards_from_env, sync_epochs_from_env,
    HarnessBudget,
};
use coverme_fdlibm::{all, by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = HarnessBudget::from_env();
    let benchmarks = if args.is_empty() {
        all()
    } else {
        args.iter().filter_map(|name| by_name(name)).collect()
    };

    println!(
        "{:<22} {:>7} {:>10} {:>9} {:>12}",
        "Function", "#Lines", "Rand(%)", "AFL(%)", "CoverMe(%)"
    );
    let (mut r, mut a, mut c) = (Vec::new(), Vec::new(), Vec::new());
    // CoverMe runs as one parallel campaign; baselines follow per benchmark
    // with budgets derived from each function's CoverMe time.
    let campaign = run_campaign(
        &benchmarks,
        budget,
        5,
        shards_from_env(),
        sync_epochs_from_env(),
    );
    for (b, result) in benchmarks.iter().zip(&campaign.results) {
        let coverme = result.report.as_ref().expect("campaign has no time budget");
        let rand = run_rand(b, budget, coverme.wall_time, 5);
        let afl = run_afl(b, budget, coverme.wall_time, 5);
        let cm = coverme.coverage.block_coverage_percent();
        let rd = rand.block_coverage_percent();
        let af = afl.block_coverage_percent();
        r.push(rd);
        a.push(af);
        c.push(cm);
        println!(
            "{:<22} {:>7} {:>10} {:>9} {:>12}",
            b.name,
            b.paper_lines,
            pct(rd),
            pct(af),
            pct(cm)
        );
    }
    println!(
        "{:<22} {:>7} {:>10} {:>9} {:>12}",
        "MEAN",
        "",
        pct(mean(r)),
        pct(mean(a)),
        pct(mean(c))
    );
    println!(
        "suite block coverage (CoverMe): {} on {} workers in {:.2?}",
        pct(campaign.suite_block_coverage_percent()),
        campaign.workers,
        campaign.wall_time
    );
}
