//! Regenerates Fig. 2: local vs. global optimization on the paper's two
//! illustrative objectives.

use coverme_optim::{BasinHopping, LocalMethod, Powell};

fn main() {
    // Fig. 2(a): lambda x. x <= 1 ? 0 : (x-1)^2 — a local method suffices.
    let mut fa = |p: &[f64]| {
        if p[0] <= 1.0 {
            0.0
        } else {
            (p[0] - 1.0).powi(2)
        }
    };
    let local = Powell::new().minimize(&mut fa, &[5.0]);
    println!(
        "Fig 2(a): Powell from x0=5.0      -> x* = {:.6}, f(x*) = {:.3e} ({} evals)",
        local.x[0], local.value, local.stats.evaluations
    );

    // Fig. 2(b): lambda x. x <= 1 ? ((x+1)^2-4)^2 : (x^2-4)^2 — needs MCMC.
    let fb = |p: &[f64]| {
        let x = p[0];
        if x <= 1.0 {
            ((x + 1.0).powi(2) - 4.0).powi(2)
        } else {
            (x * x - 4.0).powi(2)
        }
    };
    let mut fb1 = fb;
    let trapped = Powell::new().minimize(&mut fb1, &[-8.0]);
    println!(
        "Fig 2(b): Powell only from x0=-8  -> x* = {:.6}, f(x*) = {:.3e}  (may be a local minimum)",
        trapped.x[0], trapped.value
    );
    let mut fb2 = fb;
    let global = BasinHopping::new()
        .iterations(30)
        .local_method(LocalMethod::Powell)
        .seed(7)
        .minimize(&mut fb2, &[-8.0]);
    println!(
        "Fig 2(b): Basinhopping (MCMC)     -> x* = {:.6}, f(x*) = {:.3e}  (global minimum reached: {})",
        global.x[0],
        global.value,
        global.value < 1e-8
    );
}
