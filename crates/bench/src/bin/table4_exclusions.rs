//! Regenerates Table 4: the Fdlibm functions excluded from the evaluation.

use coverme_fdlibm::inventory::EXCLUDED;

fn main() {
    println!("{:<18} {:<32} Explanation", "File", "Function");
    for e in EXCLUDED {
        println!("{:<18} {:<32} {}", e.file, e.function, e.reason);
    }
    println!("\n{} functions excluded in total.", EXCLUDED.len());
}
