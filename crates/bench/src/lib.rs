//! Shared harness utilities for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` prints one table or figure of the evaluation
//! section; this library holds the code they share: running CoverMe and the
//! three baselines on a benchmark with comparable budgets, and formatting
//! rows.
//!
//! Budgets: the paper runs CoverMe with `n_start = 500`, then gives Rand and
//! AFL ten times CoverMe's wall-clock time, and lets Austin run to its own
//! termination. Re-running with those budgets takes hours; the harnesses
//! default to scaled-down budgets controlled by [`HarnessBudget`] (and the
//! `COVERME_FULL` environment variable switches to the paper's settings) so
//! that the *shape* of the comparison is reproduced quickly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use coverme::{Campaign, CampaignConfig, CampaignReport, CoverMe, CoverMeConfig, TestReport};
use coverme_baselines::{
    AflConfig, AflFuzzer, AustinConfig, AustinTester, BaselineReport, RandomConfig, RandomStrategy,
    RandomTester,
};
use coverme_fdlibm::Benchmark;

/// Budget preset for the harness binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessBudget {
    /// Quick preset: finishes the whole suite in a few minutes.
    Quick,
    /// The paper's settings (`n_start = 500`, 10× time for Rand/AFL).
    Full,
}

impl HarnessBudget {
    /// Reads the preset from the `COVERME_FULL` environment variable.
    pub fn from_env() -> HarnessBudget {
        if std::env::var_os("COVERME_FULL").is_some() {
            HarnessBudget::Full
        } else {
            HarnessBudget::Quick
        }
    }

    /// `n_start` for CoverMe under this preset.
    pub fn n_start(&self) -> usize {
        match self {
            HarnessBudget::Quick => 60,
            HarnessBudget::Full => 500,
        }
    }

    /// Execution budget for Rand/AFL when CoverMe took `coverme_time`.
    pub fn baseline_budget(&self, coverme_time: Duration) -> Duration {
        match self {
            // Ten times CoverMe's time, clamped so a slow benchmark cannot
            // stall the quick preset.
            HarnessBudget::Quick => (coverme_time * 10).min(Duration::from_millis(1500)),
            HarnessBudget::Full => coverme_time * 10,
        }
    }

    /// Execution cap for the baselines under this preset.
    pub fn baseline_max_executions(&self) -> usize {
        match self {
            HarnessBudget::Quick => 60_000,
            HarnessBudget::Full => 5_000_000,
        }
    }
}

/// Per-function shard count for the campaign harnesses, from the
/// `COVERME_SHARDS` environment variable (default 1 = unsharded). The
/// sharded schedule is deterministic per shard count, so table numbers are
/// reproducible for a fixed `COVERME_SHARDS` at any worker count.
pub fn shards_from_env() -> usize {
    std::env::var("COVERME_SHARDS")
        .ok()
        .and_then(|value| value.parse().ok())
        .filter(|&shards| shards > 0)
        .unwrap_or(1)
}

/// Per-function cross-shard sync-epoch count for the campaign harnesses,
/// from the `COVERME_SYNC_EPOCHS` environment variable (default 0 = sync
/// off, the pre-sync behavior). Only meaningful together with
/// `COVERME_SHARDS > 1`; results stay deterministic per
/// `(seed, shards, sync_epochs)` at any worker count.
pub fn sync_epochs_from_env() -> usize {
    std::env::var("COVERME_SYNC_EPOCHS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(0)
}

/// One row of the CoverMe-vs-baselines comparison.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// The benchmark this row describes.
    pub benchmark: Benchmark,
    /// CoverMe's report.
    pub coverme: TestReport,
    /// Rand's report, if run.
    pub rand: Option<BaselineReport>,
    /// AFL's report, if run.
    pub afl: Option<BaselineReport>,
    /// Austin's report, if run.
    pub austin: Option<BaselineReport>,
}

/// The paper's CoverMe configuration (`n_iter = 5`, `LM = powell`), scaled
/// by the budget preset. Shared by the sequential and campaign entry points
/// so every table column runs the same search.
pub fn paper_config(budget: HarnessBudget, seed: u64) -> CoverMeConfig {
    CoverMeConfig::default()
        .with_n_start(budget.n_start())
        .with_n_iter(5)
        .with_seed(seed)
}

/// Runs CoverMe on one benchmark with the paper's configuration (scaled by
/// the budget preset).
pub fn run_coverme(benchmark: &Benchmark, budget: HarnessBudget, seed: u64) -> TestReport {
    CoverMe::new(paper_config(budget, seed)).run(benchmark)
}

/// Runs the CoverMe phase of a table as a parallel campaign: one search per
/// benchmark, fanned across worker threads with per-function seeds derived
/// from `seed`, and each function's `n_start` budget split across `shards`
/// shard units of the campaign's two-level schedule (`shards <= 1` is the
/// unsharded paper setup). With `sync_epochs > 1` the shard units of each
/// function additionally rendezvous at deterministic epoch barriers and
/// exchange saturation deltas (see `coverme::sync`), recovering the
/// sequential run's directed-search feedback at high shard counts. The
/// report's results are in `benchmarks` order, so table harnesses can zip
/// them back against the benchmark list and hand each function's
/// wall-clock time to the baseline budgets.
///
/// Caveat on those times: per-function `wall_time` is measured inside a
/// worker while sibling searches run on other cores. The campaign never
/// runs more workers than the machine's available parallelism, so each
/// search keeps a core to itself and the residual inflation (shared cache
/// and memory bandwidth) is small for this compute-bound workload — but
/// baseline budgets derived from these times are not identical to ones
/// measured sequentially, and under `COVERME_FULL=1` (no clamp) table
/// numbers can shift slightly with core count.
pub fn run_campaign(
    benchmarks: &[Benchmark],
    budget: HarnessBudget,
    seed: u64,
    shards: usize,
    sync_epochs: usize,
) -> CampaignReport {
    let base = paper_config(budget, seed)
        .with_shards(shards)
        .with_sync_epochs(sync_epochs);
    Campaign::new(CampaignConfig::new().with_base(base)).run(benchmarks)
}

/// Runs the Rand baseline with a budget derived from CoverMe's time.
pub fn run_rand(
    benchmark: &Benchmark,
    budget: HarnessBudget,
    coverme_time: Duration,
    seed: u64,
) -> BaselineReport {
    RandomTester::new(RandomConfig {
        strategy: RandomStrategy::UniformBox { lo: -1e6, hi: 1e6 },
        max_executions: budget.baseline_max_executions(),
        time_budget: Some(budget.baseline_budget(coverme_time)),
        seed,
    })
    .run(benchmark)
}

/// Runs the AFL-style baseline with a budget derived from CoverMe's time.
pub fn run_afl(
    benchmark: &Benchmark,
    budget: HarnessBudget,
    coverme_time: Duration,
    seed: u64,
) -> BaselineReport {
    AflFuzzer::new(AflConfig {
        max_executions: budget.baseline_max_executions(),
        time_budget: Some(budget.baseline_budget(coverme_time)),
        havoc_stack: 6,
        seed,
    })
    .run(benchmark)
}

/// Runs the Austin-style baseline (it terminates on its own, as in the
/// paper, but still respects a generous cap).
pub fn run_austin(benchmark: &Benchmark, budget: HarnessBudget, seed: u64) -> BaselineReport {
    AustinTester::new(AustinConfig {
        max_executions: budget.baseline_max_executions(),
        per_target_budget: match budget {
            HarnessBudget::Quick => 1_500,
            HarnessBudget::Full => 20_000,
        },
        restarts: 4,
        time_budget: Some(match budget {
            HarnessBudget::Quick => Duration::from_millis(1500),
            HarnessBudget::Full => Duration::from_secs(600),
        }),
        seed,
    })
    .run(benchmark)
}

/// Formats a percentage the way the paper's tables do (one decimal).
pub fn pct(value: f64) -> String {
    format!("{value:.1}")
}

/// Computes the mean of an iterator of f64 values (0 if empty).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_fdlibm::by_name;

    #[test]
    fn budgets_scale_sensibly() {
        assert!(HarnessBudget::Quick.n_start() < HarnessBudget::Full.n_start());
        let quick = HarnessBudget::Quick.baseline_budget(Duration::from_secs(10));
        assert!(quick <= Duration::from_secs(2));
        let full = HarnessBudget::Full.baseline_budget(Duration::from_secs(10));
        assert_eq!(full, Duration::from_secs(100));
    }

    #[test]
    fn mean_and_pct_helpers() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(std::iter::empty::<f64>()), 0.0);
        assert_eq!(pct(90.82), "90.8");
    }

    #[test]
    fn shards_env_parses_and_defaults_to_unsharded() {
        // Control the variable instead of assuming a clean environment; no
        // other test reads it.
        std::env::set_var("COVERME_SHARDS", "4");
        assert_eq!(shards_from_env(), 4);
        std::env::set_var("COVERME_SHARDS", "0");
        assert_eq!(shards_from_env(), 1, "0 falls back to unsharded");
        std::env::set_var("COVERME_SHARDS", "not-a-number");
        assert_eq!(shards_from_env(), 1);
        std::env::remove_var("COVERME_SHARDS");
        assert_eq!(shards_from_env(), 1);
    }

    #[test]
    fn sync_epochs_env_parses_and_defaults_to_off() {
        std::env::set_var("COVERME_SYNC_EPOCHS", "4");
        assert_eq!(sync_epochs_from_env(), 4);
        std::env::set_var("COVERME_SYNC_EPOCHS", "junk");
        assert_eq!(sync_epochs_from_env(), 0);
        std::env::remove_var("COVERME_SYNC_EPOCHS");
        assert_eq!(sync_epochs_from_env(), 0, "default is sync off");
    }

    #[test]
    fn sharded_campaign_keeps_tanh_coverage() {
        let benchmarks = vec![by_name("tanh").unwrap()];
        let unsharded = run_campaign(&benchmarks, HarnessBudget::Quick, 3, 1, 0);
        let sharded = run_campaign(&benchmarks, HarnessBudget::Quick, 3, 4, 0);
        let a = unsharded.results[0].report.as_ref().unwrap();
        let b = sharded.results[0].report.as_ref().unwrap();
        assert!(
            b.coverage.covered_count() >= a.coverage.covered_count(),
            "4 shards covered {} < {}",
            b.coverage.covered_count(),
            a.coverage.covered_count()
        );
    }

    #[test]
    fn synced_campaign_keeps_tanh_coverage() {
        // Sync-on must not lose coverage against sync-off at equal budget.
        // (Evaluation *savings* only appear on functions whose union
        // saturates within the budget — the early-exit mechanism; tanh
        // does not saturate under the quick budget, so only the coverage
        // invariant is pinned here. The nightly --compare-sync run tracks
        // the savings on the functions that do.)
        let benchmarks = vec![by_name("tanh").unwrap()];
        let blind = run_campaign(&benchmarks, HarnessBudget::Quick, 3, 4, 0);
        let synced = run_campaign(&benchmarks, HarnessBudget::Quick, 3, 4, 4);
        let off = blind.results[0].report.as_ref().unwrap();
        let on = synced.results[0].report.as_ref().unwrap();
        assert!(
            on.coverage.covered_count() >= off.coverage.covered_count(),
            "sync lost coverage: {} < {}",
            on.coverage.covered_count(),
            off.coverage.covered_count()
        );
    }

    #[test]
    fn coverme_beats_rand_on_tanh() {
        let tanh = by_name("tanh").unwrap();
        let coverme = run_coverme(&tanh, HarnessBudget::Quick, 1);
        let rand = run_rand(&tanh, HarnessBudget::Quick, coverme.wall_time, 1);
        assert!(
            coverme.branch_coverage_percent() >= rand.branch_coverage_percent(),
            "CoverMe {:.1}% vs Rand {:.1}%",
            coverme.branch_coverage_percent(),
            rand.branch_coverage_percent()
        );
        // Under the quick budget (and a debug build) CoverMe may stop short
        // of the full-budget figure; it must still clear a meaningful bar.
        assert!(
            coverme.branch_coverage_percent() >= 60.0,
            "only {:.1}%",
            coverme.branch_coverage_percent()
        );
    }
}
