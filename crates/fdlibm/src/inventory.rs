//! The Fdlibm functions the paper's evaluation excludes, and why (Table 4).
//!
//! The evaluation keeps 40 of Fdlibm 5.3's 92 math functions. The rest are
//! excluded for one of three reasons: the function has no branch at all
//! (mostly the `w_*.c` wrappers), it takes a parameter that is not a
//! floating-point double, or it is a `static` helper that is not an entry
//! point. This module records that inventory so the Table 4 harness can
//! regenerate the listing.

/// Why a function is excluded from the benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExclusionReason {
    /// The function body has no conditional branch.
    NoBranch,
    /// The function takes a non-`double` input parameter.
    UnsupportedInputType,
    /// The function is a `static` helper, not an entry point.
    StaticHelper,
}

impl std::fmt::Display for ExclusionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExclusionReason::NoBranch => write!(f, "no branch"),
            ExclusionReason::UnsupportedInputType => write!(f, "unsupported input type"),
            ExclusionReason::StaticHelper => write!(f, "static C function"),
        }
    }
}

/// One excluded Fdlibm function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExcludedFunction {
    /// Source file in Fdlibm 5.3.
    pub file: &'static str,
    /// Function name (C signature elided).
    pub function: &'static str,
    /// Why it is excluded.
    pub reason: ExclusionReason,
}

/// The full exclusion table (paper Table 4).
pub const EXCLUDED: &[ExcludedFunction] = &[
    ExcludedFunction {
        file: "e_gamma_r.c",
        function: "ieee754_gamma_r",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "e_gamma.c",
        function: "ieee754_gamma",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "e_j0.c",
        function: "pzero",
        reason: ExclusionReason::StaticHelper,
    },
    ExcludedFunction {
        file: "e_j0.c",
        function: "qzero",
        reason: ExclusionReason::StaticHelper,
    },
    ExcludedFunction {
        file: "e_j1.c",
        function: "pone",
        reason: ExclusionReason::StaticHelper,
    },
    ExcludedFunction {
        file: "e_j1.c",
        function: "qone",
        reason: ExclusionReason::StaticHelper,
    },
    ExcludedFunction {
        file: "e_jn.c",
        function: "ieee754_jn",
        reason: ExclusionReason::UnsupportedInputType,
    },
    ExcludedFunction {
        file: "e_jn.c",
        function: "ieee754_yn",
        reason: ExclusionReason::UnsupportedInputType,
    },
    ExcludedFunction {
        file: "e_lgamma_r.c",
        function: "sin_pi",
        reason: ExclusionReason::StaticHelper,
    },
    ExcludedFunction {
        file: "e_lgamma_r.c",
        function: "ieee754_lgamma_r",
        reason: ExclusionReason::UnsupportedInputType,
    },
    ExcludedFunction {
        file: "e_lgamma.c",
        function: "ieee754_lgamma",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "k_rem_pio2.c",
        function: "kernel_rem_pio2",
        reason: ExclusionReason::UnsupportedInputType,
    },
    ExcludedFunction {
        file: "k_sin.c",
        function: "kernel_sin",
        reason: ExclusionReason::UnsupportedInputType,
    },
    ExcludedFunction {
        file: "k_standard.c",
        function: "kernel_standard",
        reason: ExclusionReason::UnsupportedInputType,
    },
    ExcludedFunction {
        file: "k_tan.c",
        function: "kernel_tan",
        reason: ExclusionReason::UnsupportedInputType,
    },
    ExcludedFunction {
        file: "s_copysign.c",
        function: "copysign",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "s_fabs.c",
        function: "fabs",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "s_finite.c",
        function: "finite",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "s_frexp.c",
        function: "frexp",
        reason: ExclusionReason::UnsupportedInputType,
    },
    ExcludedFunction {
        file: "s_isnan.c",
        function: "isnan",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "s_ldexp.c",
        function: "ldexp",
        reason: ExclusionReason::UnsupportedInputType,
    },
    ExcludedFunction {
        file: "s_lib_version.c",
        function: "lib_version",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "s_matherr.c",
        function: "matherr",
        reason: ExclusionReason::UnsupportedInputType,
    },
    ExcludedFunction {
        file: "s_scalbn.c",
        function: "scalbn",
        reason: ExclusionReason::UnsupportedInputType,
    },
    ExcludedFunction {
        file: "s_signgam.c",
        function: "signgam",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "s_significand.c",
        function: "significand",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_acos.c",
        function: "acos",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_acosh.c",
        function: "acosh",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_asin.c",
        function: "asin",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_atan2.c",
        function: "atan2",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_atanh.c",
        function: "atanh",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_cosh.c",
        function: "cosh",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_exp.c",
        function: "exp",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_fmod.c",
        function: "fmod",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_gamma_r.c",
        function: "gamma_r",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_gamma.c",
        function: "gamma",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_hypot.c",
        function: "hypot",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_j0.c",
        function: "j0",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_j0.c",
        function: "y0",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_j1.c",
        function: "j1",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_j1.c",
        function: "y1",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_jn.c",
        function: "jn",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_jn.c",
        function: "yn",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_lgamma_r.c",
        function: "lgamma_r",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_lgamma.c",
        function: "lgamma",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_log.c",
        function: "log",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_log10.c",
        function: "log10",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_pow.c",
        function: "pow",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_remainder.c",
        function: "remainder",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_scalb.c",
        function: "scalb",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_sinh.c",
        function: "sinh",
        reason: ExclusionReason::NoBranch,
    },
    ExcludedFunction {
        file: "w_sqrt.c",
        function: "sqrt",
        reason: ExclusionReason::NoBranch,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusion_table_is_populated_and_consistent() {
        assert!(EXCLUDED.len() >= 50);
        // No duplicate (file, function) pairs.
        let mut seen = std::collections::HashSet::new();
        for e in EXCLUDED {
            assert!(seen.insert((e.file, e.function)), "duplicate entry {e:?}");
        }
    }

    #[test]
    fn reasons_render_like_the_paper() {
        assert_eq!(ExclusionReason::NoBranch.to_string(), "no branch");
        assert_eq!(
            ExclusionReason::UnsupportedInputType.to_string(),
            "unsupported input type"
        );
        assert_eq!(
            ExclusionReason::StaticHelper.to_string(),
            "static C function"
        );
    }

    #[test]
    fn wrappers_are_all_branchless() {
        for e in EXCLUDED.iter().filter(|e| e.file.starts_with("w_")) {
            assert_eq!(e.reason, ExclusionReason::NoBranch);
        }
    }
}
