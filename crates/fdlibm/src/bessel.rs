//! Bessel functions of the first and second kind: `j0`, `y0`, `j1`, `y1`.
//!
//! Ports of `e_j0.c` and `e_j1.c` (entry functions only; the static helper
//! functions `pzero`/`qzero`/`pone`/`qone` are excluded by the paper's
//! Table 4 and are inlined as plain asymptotic expressions here).

use coverme_runtime::{Cmp, ExecCtx};

use crate::bits::high_word;

const HUGE: f64 = 1.0e300;
const INVSQRTPI: f64 = 5.641_895_835_477_562_87e-01;
const TPI: f64 = 6.366_197_723_675_813_82e-01;

/// `e_j0.c` — j0(x). 9 conditional sites.
pub fn j0(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let ix = hx & 0x7fff_ffff;

    // inf or NaN
    if ctx.branch_i32(0, Cmp::Ge, ix, 0x7ff0_0000) {
        let _ = 1.0 / (x * x);
        return;
    }
    let xa = x.abs();
    // |x| >= 2
    if ctx.branch_i32(1, Cmp::Ge, ix, 0x4000_0000) {
        let s = xa.sin();
        let c = xa.cos();
        let mut ss = s - c;
        let cc = s + c;
        // avoid cancellation near the zeros of cos(2x)
        if ctx.branch_i32(2, Cmp::Lt, ix, 0x7fe0_0000) {
            let z = -(xa + xa).cos();
            if ctx.branch(3, Cmp::Gt, s * c, 0.0) {
                ss = z / ss;
            } else {
                // cc path of the original (value unused here)
                let _ = z / cc;
            }
        }
        // |x| > 2^127: drop the p/q correction entirely
        if ctx.branch_i32(4, Cmp::Gt, ix, 0x4800_0000) {
            let _ = INVSQRTPI * ss / xa.sqrt();
        } else {
            let _ = INVSQRTPI * (cc - ss / xa) / xa.sqrt();
        }
        return;
    }
    // |x| < 2^-27
    if ctx.branch_i32(5, Cmp::Lt, ix, 0x3e40_0000) {
        if ctx.branch(6, Cmp::Gt, HUGE + x, 1.0) {
            let _ = 1.0 - 0.25 * x * x;
            return;
        }
    }
    let z = x * x;
    let r = z * (0.015624999999999995 + z * -1.8997929423885472e-04);
    let s = 1.0 + z * 0.008;
    // |x| < 1
    if ctx.branch_i32(7, Cmp::Lt, ix, 0x3ff0_0000) {
        let _ = 1.0 + z * (-0.25 + r / s);
        return;
    }
    let u = 0.5 * x;
    let _ = (1.0 + u) * (1.0 - u) + z * (r / s);
    let _ = ctx.branch_i32(8, Cmp::Ge, hx, 0);
}

/// `e_j0.c` — y0(x). 8 conditional sites.
pub fn y0(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let ix = hx & 0x7fff_ffff;
    let lx = crate::bits::low_word(x);

    // y0(NaN) = NaN, y0(inf) = 0
    if ctx.branch_i32(0, Cmp::Ge, ix, 0x7ff0_0000) {
        let _ = 1.0 / (x + x * x);
        return;
    }
    // y0(0) = -inf
    if ctx.branch(1, Cmp::Eq, ((ix as u32) | lx) as f64, 0.0) {
        let _ = -1.0 / 0.0;
        return;
    }
    // y0(x < 0) = NaN
    if ctx.branch_i32(2, Cmp::Lt, hx, 0) {
        let _ = 0.0 / 0.0;
        return;
    }
    // |x| >= 2
    if ctx.branch_i32(3, Cmp::Ge, ix, 0x4000_0000) {
        let s = x.sin();
        let c = x.cos();
        let mut ss = s - c;
        let cc = s + c;
        if ctx.branch_i32(4, Cmp::Lt, ix, 0x7fe0_0000) {
            let z = -(x + x).cos();
            if ctx.branch(5, Cmp::Gt, s * c, 0.0) {
                let _ = z / cc;
            } else {
                ss = z / ss;
            }
        }
        if ctx.branch_i32(6, Cmp::Gt, ix, 0x4800_0000) {
            let _ = INVSQRTPI * ss / x.sqrt();
        } else {
            let _ = INVSQRTPI * (ss + cc / x) / x.sqrt();
        }
        return;
    }
    // x < 2^-26
    if ctx.branch_i32(7, Cmp::Le, ix, 0x3e40_0000) {
        let _ = -7.380_429_510_868_723e-02 + TPI * x.ln();
        return;
    }
    let z = x * x;
    let u = -7.380_429_510_868_723e-02 + z * 0.17666645250918112;
    let v = 1.0 + z * 0.01273048348341237;
    let _ = u / v + TPI * (j0_value(x) * x.ln());
}

/// `e_j1.c` — j1(x). 8 conditional sites.
pub fn j1(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let ix = hx & 0x7fff_ffff;

    if ctx.branch_i32(0, Cmp::Ge, ix, 0x7ff0_0000) {
        let _ = 1.0 / x;
        return;
    }
    let xa = x.abs();
    if ctx.branch_i32(1, Cmp::Ge, ix, 0x4000_0000) {
        let s = xa.sin();
        let c = xa.cos();
        let mut ss = -s - c;
        let cc = s - c;
        if ctx.branch_i32(2, Cmp::Lt, ix, 0x7fe0_0000) {
            let z = (xa + xa).cos();
            if ctx.branch(3, Cmp::Gt, s * c, 0.0) {
                let _ = z / ss;
            } else {
                ss = z / cc;
            }
        }
        let res = if ctx.branch_i32(4, Cmp::Gt, ix, 0x4800_0000) {
            INVSQRTPI * cc / xa.sqrt()
        } else {
            INVSQRTPI * (cc - ss / xa) / xa.sqrt()
        };
        let _ = if ctx.branch_i32(5, Cmp::Lt, hx, 0) {
            -res
        } else {
            res
        };
        return;
    }
    // |x| < 2^-27
    if ctx.branch_i32(6, Cmp::Lt, ix, 0x3e40_0000) {
        if ctx.branch(7, Cmp::Gt, HUGE + x, 1.0) {
            let _ = 0.5 * x;
            return;
        }
    }
    let z = x * x;
    let r = z * (-6.25e-02 + z * 1.407_056_669_551_897e-03);
    let s = 1.0 + z * 0.01;
    let _ = x * 0.5 + x * (z * (r / s));
}

/// `e_j1.c` — y1(x). 8 conditional sites.
pub fn y1(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let ix = hx & 0x7fff_ffff;
    let lx = crate::bits::low_word(x);

    if ctx.branch_i32(0, Cmp::Ge, ix, 0x7ff0_0000) {
        let _ = 1.0 / (x + x * x);
        return;
    }
    if ctx.branch(1, Cmp::Eq, ((ix as u32) | lx) as f64, 0.0) {
        let _ = -1.0 / 0.0;
        return;
    }
    if ctx.branch_i32(2, Cmp::Lt, hx, 0) {
        let _ = 0.0 / 0.0;
        return;
    }
    if ctx.branch_i32(3, Cmp::Ge, ix, 0x4000_0000) {
        let s = x.sin();
        let c = x.cos();
        let mut ss = -s - c;
        let cc = s - c;
        if ctx.branch_i32(4, Cmp::Lt, ix, 0x7fe0_0000) {
            let z = (x + x).cos();
            if ctx.branch(5, Cmp::Gt, s * c, 0.0) {
                let _ = z / ss;
            } else {
                ss = z / cc;
            }
        }
        if ctx.branch_i32(6, Cmp::Gt, ix, 0x4800_0000) {
            let _ = INVSQRTPI * ss / x.sqrt();
        } else {
            let _ = INVSQRTPI * (ss + cc / x) / x.sqrt();
        }
        return;
    }
    // x <= 2^-54
    if ctx.branch_i32(7, Cmp::Le, ix, 0x3c90_0000) {
        let _ = -TPI / x;
        return;
    }
    let z = x * x;
    let u = -1.960_570_906_462_389e-01 + z * 5.044_387_166_398_113e-02;
    let v = 1.0 + z * 1.991_673_182_366_499e-02;
    let _ = x * (u / v) + TPI * (j1_value(x) * x.ln() - 1.0 / x);
}

/// Helper: a plain (uninstrumented) j0 value used inside y0's kernel; the
/// original calls `__ieee754_j0` whose branches belong to its own Gcov unit.
fn j0_value(x: f64) -> f64 {
    let z = x * x;
    1.0 + z * (-0.25 + z * 0.015625)
}

/// Helper: plain j1 value used inside y1's kernel.
fn j1_value(x: f64) -> f64 {
    x * (0.5 + x * x * -6.25e-02)
}

/// Number of conditional sites of each port in this module.
pub mod sites {
    /// Sites in [`super::j0`].
    pub const J0: usize = 9;
    /// Sites in [`super::y0`].
    pub const Y0: usize = 8;
    /// Sites in [`super::j1`].
    pub const J1: usize = 8;
    /// Sites in [`super::y1`].
    pub const Y1: usize = 8;
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{BranchId, ExecCtx};

    fn run(f: fn(&[f64], &mut ExecCtx), x: f64) -> ExecCtx {
        let mut ctx = ExecCtx::observe();
        f(&[x], &mut ctx);
        ctx
    }

    #[test]
    fn site_ids_stay_within_declared_ranges() {
        let cases: crate::SiteCases = &[
            (j0, sites::J0),
            (y0, sites::Y0),
            (j1, sites::J1),
            (y1, sites::Y1),
        ];
        let inputs = [
            0.0,
            -0.0,
            1e-30,
            0.5,
            1.0,
            -1.0,
            1.5,
            3.0,
            -3.0,
            1e10,
            1e40,
            1e300,
            -5.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        for &(f, declared) in cases {
            for &x in &inputs {
                let ctx = run(f, x);
                for e in ctx.trace() {
                    assert!((e.site as usize) < declared, "site {} on {}", e.site, x);
                }
            }
        }
    }

    #[test]
    fn y_functions_reject_negative_and_zero_arguments() {
        assert!(run(y0, -1.0).covered().contains(BranchId::true_of(2)));
        assert!(run(y0, 0.0).covered().contains(BranchId::true_of(1)));
        assert!(run(y1, -2.0).covered().contains(BranchId::true_of(2)));
    }

    #[test]
    fn j_functions_split_small_and_large_arguments() {
        assert!(run(j0, 0.5).covered().contains(BranchId::false_of(1)));
        assert!(run(j0, 5.0).covered().contains(BranchId::true_of(1)));
        assert!(run(j1, 1e-30).covered().contains(BranchId::true_of(6)));
    }
}
