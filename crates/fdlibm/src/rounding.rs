//! Rounding, decomposition and remainder functions: `ceil`, `floor`,
//! `rint`, `modf`, `ilogb`, `logb`, `nextafter`, `remainder`, `fmod`.
//!
//! Ports of `s_ceil.c`, `s_floor.c`, `s_rint.c`, `s_modf.c`, `s_ilogb.c`,
//! `s_logb.c`, `s_nextafter.c`, `e_remainder.c` and `e_fmod.c`.

use coverme_runtime::{Cmp, ExecCtx};

use crate::bits::{from_words, high_word, low_word};

const HUGE: f64 = 1.0e300;

/// `s_ceil.c` — ceil(x). 13 conditional sites.
pub fn ceil(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let mut i0 = high_word(x);
    let mut i1 = low_word(x);
    let j0 = ((i0 >> 20) & 0x7ff) - 0x3ff;

    if ctx.branch_i32(0, Cmp::Lt, j0, 20) {
        // raise inexact if x != 0
        if ctx.branch_i32(1, Cmp::Lt, j0, 0) {
            if ctx.branch(2, Cmp::Gt, HUGE + x, 0.0) {
                if ctx.branch_i32(3, Cmp::Lt, i0, 0) {
                    i0 = 0x8000_0000u32 as i32;
                    i1 = 0;
                } else if ctx.branch(4, Cmp::Ne, (i0 | i1 as i32) as f64, 0.0) {
                    i0 = 0x3ff0_0000;
                    i1 = 0;
                }
            }
        } else {
            let i = 0x000f_ffff >> j0;
            // x is integral
            if ctx.branch(5, Cmp::Eq, ((i0 & i) | i1 as i32) as f64, 0.0) {
                let _ = x;
                return;
            }
            if ctx.branch(6, Cmp::Gt, HUGE + x, 0.0) {
                if ctx.branch_i32(7, Cmp::Gt, i0, 0) {
                    i0 += 0x0010_0000 >> j0;
                }
                i0 &= !i;
                i1 = 0;
            }
        }
    } else if ctx.branch_i32(8, Cmp::Gt, j0, 51) {
        // inf or NaN or already integral
        if ctx.branch_i32(9, Cmp::Eq, j0, 0x400) {
            let _ = x + x;
            return;
        }
        let _ = x;
        return;
    } else {
        let i = 0xffff_ffffu32 >> (j0 - 20);
        // x is integral
        if ctx.branch(10, Cmp::Eq, (i1 & i) as f64, 0.0) {
            let _ = x;
            return;
        }
        if ctx.branch(11, Cmp::Gt, HUGE + x, 0.0) {
            if ctx.branch_i32(12, Cmp::Gt, i0, 0) {
                if j0 == 20 {
                    i0 += 1;
                } else {
                    let j = i1.wrapping_add(1u32 << (52 - j0));
                    if j < i1 {
                        i0 += 1;
                    }
                    i1 = j;
                }
            }
            i1 &= !i;
        }
    }
    let _ = from_words(i0, i1);
}

/// `s_floor.c` — floor(x). 13 conditional sites.
pub fn floor(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let mut i0 = high_word(x);
    let mut i1 = low_word(x);
    let j0 = ((i0 >> 20) & 0x7ff) - 0x3ff;

    if ctx.branch_i32(0, Cmp::Lt, j0, 20) {
        if ctx.branch_i32(1, Cmp::Lt, j0, 0) {
            if ctx.branch(2, Cmp::Gt, HUGE + x, 0.0) {
                if ctx.branch_i32(3, Cmp::Ge, i0, 0) {
                    i0 = 0;
                    i1 = 0;
                } else if ctx.branch(4, Cmp::Ne, ((i0 & 0x7fff_ffff) | i1 as i32) as f64, 0.0) {
                    i0 = 0xbff0_0000u32 as i32;
                    i1 = 0;
                }
            }
        } else {
            let i = 0x000f_ffff >> j0;
            if ctx.branch(5, Cmp::Eq, ((i0 & i) | i1 as i32) as f64, 0.0) {
                let _ = x;
                return;
            }
            if ctx.branch(6, Cmp::Gt, HUGE + x, 0.0) {
                if ctx.branch_i32(7, Cmp::Lt, i0, 0) {
                    i0 += 0x0010_0000 >> j0;
                }
                i0 &= !i;
                i1 = 0;
            }
        }
    } else if ctx.branch_i32(8, Cmp::Gt, j0, 51) {
        if ctx.branch_i32(9, Cmp::Eq, j0, 0x400) {
            let _ = x + x;
            return;
        }
        let _ = x;
        return;
    } else {
        let i = 0xffff_ffffu32 >> (j0 - 20);
        if ctx.branch(10, Cmp::Eq, (i1 & i) as f64, 0.0) {
            let _ = x;
            return;
        }
        if ctx.branch(11, Cmp::Gt, HUGE + x, 0.0) {
            if ctx.branch_i32(12, Cmp::Lt, i0, 0) {
                if j0 == 20 {
                    i0 += 1;
                } else {
                    let j = i1.wrapping_add(1u32 << (52 - j0));
                    if j < i1 {
                        i0 += 1;
                    }
                    i1 = j;
                }
            }
            i1 &= !i;
        }
    }
    let _ = from_words(i0, i1);
}

/// `s_rint.c` — rint(x). 10 conditional sites.
pub fn rint(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let i0 = high_word(x);
    let i1 = low_word(x);
    let sx = ((i0 >> 31) & 1) as usize;
    let j0 = ((i0 >> 20) & 0x7ff) - 0x3ff;
    let two52 = [4.503_599_627_370_496e15, -4.503_599_627_370_496e15];

    if ctx.branch_i32(0, Cmp::Lt, j0, 20) {
        if ctx.branch_i32(1, Cmp::Lt, j0, 0) {
            // |x| < 1
            if ctx.branch(2, Cmp::Eq, (((i0 & 0x7fff_ffff) as u32) | i1) as f64, 0.0) {
                let _ = x;
                return;
            }
            let w = two52[sx] + x;
            let t = w - two52[sx];
            let hi_t = high_word(t);
            let _ = from_words((hi_t & 0x7fff_ffff) | ((sx as i32) << 31), low_word(t));
            // nonzero fraction below 0.5 collapses to +-0
            let _ = ctx.branch_i32(3, Cmp::Ge, j0, -1);
            return;
        }
        let i = 0x000f_ffff >> j0;
        // x is integral
        if ctx.branch(4, Cmp::Eq, (((i0 & i) as u32) | i1) as f64, 0.0) {
            let _ = x;
            return;
        }
        // fraction is exactly one half?
        let masked = i0 & i;
        if ctx.branch_i32(5, Cmp::Eq, masked, 0x0008_0000 >> j0) {
            if ctx.branch(6, Cmp::Eq, i1 as f64, 0.0) {
                let w = two52[sx] + x;
                let _ = w - two52[sx];
                return;
            }
        }
        let w = two52[sx] + x;
        let _ = w - two52[sx];
        return;
    }
    if ctx.branch_i32(7, Cmp::Gt, j0, 51) {
        // inf or NaN
        if ctx.branch_i32(8, Cmp::Eq, j0, 0x400) {
            let _ = x + x;
            return;
        }
        let _ = x;
        return;
    }
    let i = 0xffff_ffffu32 >> (j0 - 20);
    if ctx.branch(9, Cmp::Eq, (i1 & i) as f64, 0.0) {
        let _ = x;
        return;
    }
    let w = two52[sx] + x;
    let _ = w - two52[sx];
}

/// `s_modf.c` — modf(x, &iptr). 5 conditional sites. The `double*`
/// parameter is an output, so the testable input is just `x`.
pub fn modf(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let i0 = high_word(x);
    let i1 = low_word(x);
    let j0 = ((i0 >> 20) & 0x7ff) - 0x3ff;

    // no fraction part for |x| >= 2^52; NaN/inf handled by the same path
    if ctx.branch_i32(0, Cmp::Gt, j0, 51) {
        let _ = x * 1.0;
        return;
    }
    // no integer part for |x| < 1
    if ctx.branch_i32(1, Cmp::Lt, j0, 0) {
        let _ = x;
        return;
    }
    if ctx.branch_i32(2, Cmp::Lt, j0, 20) {
        let i = 0x000f_ffff >> j0;
        // x is integral
        if ctx.branch(3, Cmp::Eq, (((i0 & i) as u32) | i1) as f64, 0.0) {
            let _ = x;
            return;
        }
        let _ = from_words(i0 & !i, 0);
        return;
    }
    let i = 0xffff_ffffu32 >> (j0 - 20);
    if ctx.branch(4, Cmp::Eq, (i1 & i) as f64, 0.0) {
        let _ = x;
        return;
    }
    let _ = from_words(i0, i1 & !i);
}

/// `s_ilogb.c` — ilogb(x). 6 conditional sites.
pub fn ilogb(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x) & 0x7fff_ffff;
    let lx = low_word(x);

    if ctx.branch_i32(0, Cmp::Lt, hx, 0x0010_0000) {
        // x == 0: return 0x80000001
        if ctx.branch(1, Cmp::Eq, ((hx as u32) | lx) as f64, 0.0) {
            let _ = i32::MIN + 1;
            return;
        }
        // subnormal
        let mut ix = -1043i32;
        if ctx.branch_i32(2, Cmp::Eq, hx, 0) {
            let mut i = lx;
            while ctx.branch(3, Cmp::Gt, i as f64, 0.0) {
                ix -= 1;
                i <<= 1;
            }
        } else {
            let mut i = hx << 11;
            ix = -1022;
            while ctx.branch_i32(4, Cmp::Gt, i, 0) {
                ix -= 1;
                i <<= 1;
            }
        }
        let _ = ix;
        return;
    }
    if ctx.branch_i32(5, Cmp::Lt, hx, 0x7ff0_0000) {
        let _ = (hx >> 20) - 1023;
        return;
    }
    let _ = i32::MAX;
}

/// `s_logb.c` — logb(x). 3 conditional sites.
pub fn logb(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let ix = high_word(x) & 0x7fff_ffff;
    let lx = low_word(x);

    // x == 0: -inf
    if ctx.branch(0, Cmp::Eq, ((ix as u32) | lx) as f64, 0.0) {
        let _ = -1.0 / x.abs();
        return;
    }
    // inf or NaN
    if ctx.branch_i32(1, Cmp::Ge, ix, 0x7ff0_0000) {
        let _ = x * x;
        return;
    }
    // subnormal
    if ctx.branch_i32(2, Cmp::Lt, ix >> 20, 1) {
        let _ = -1022.0;
    } else {
        let _ = f64::from((ix >> 20) - 1023);
    }
}

/// `s_nextafter.c` — nextafter(x, y). 16 conditional sites.
pub fn nextafter(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let y = input[1];
    let hx = high_word(x);
    let lx = low_word(x);
    let hy = high_word(y);
    let ly = low_word(y);
    let ix = hx & 0x7fff_ffff;
    let iy = hy & 0x7fff_ffff;

    // x is NaN
    if ctx.branch(
        0,
        Cmp::Gt,
        ix as f64 + if lx != 0 { 0.5 } else { 0.0 },
        0x7ff0_0000 as f64,
    ) {
        let _ = x + y;
        return;
    }
    // y is NaN
    if ctx.branch(
        1,
        Cmp::Gt,
        iy as f64 + if ly != 0 { 0.5 } else { 0.0 },
        0x7ff0_0000 as f64,
    ) {
        let _ = x + y;
        return;
    }
    // x == y
    if ctx.branch(2, Cmp::Eq, x, y) {
        let _ = x;
        return;
    }
    // x == 0: return minimal subnormal with y's sign
    if ctx.branch(3, Cmp::Eq, ((ix as u32) | lx) as f64, 0.0) {
        let tiny = from_words(hy & 0x8000_0000u32 as i32, 1);
        let _ = tiny * tiny; // raise underflow
        return;
    }
    let (mut hx2, mut lx2) = (hx, lx);
    let step_up;
    if ctx.branch_i32(4, Cmp::Ge, hx, 0) {
        // x > 0
        if ctx.branch_i32(5, Cmp::Gt, hx, hy)
            || (ctx.branch_i32(6, Cmp::Eq, hx, hy) && ctx.branch(7, Cmp::Gt, lx as f64, ly as f64))
        {
            step_up = false; // x > y: step down
        } else {
            step_up = true;
        }
    } else if ctx.branch_i32(8, Cmp::Ge, hy, 0)
        || ctx.branch_i32(9, Cmp::Gt, hx, hy)
        || (ctx.branch_i32(10, Cmp::Eq, hx, hy) && ctx.branch(11, Cmp::Gt, lx as f64, ly as f64))
    {
        // x < 0 and x < y in magnitude-signed order: step toward zero
        step_up = false;
    } else {
        step_up = true;
    }
    if step_up {
        lx2 = lx2.wrapping_add(1);
        if ctx.branch(12, Cmp::Eq, lx2 as f64, 0.0) {
            hx2 += 1;
        }
    } else {
        if ctx.branch(13, Cmp::Eq, lx2 as f64, 0.0) {
            hx2 -= 1;
        }
        lx2 = lx2.wrapping_sub(1);
    }
    let hy2 = hx2 & 0x7ff0_0000;
    // overflow
    if ctx.branch_i32(14, Cmp::Ge, hy2, 0x7ff0_0000) {
        let _ = x + x;
        return;
    }
    // underflow into subnormal range
    if ctx.branch_i32(15, Cmp::Lt, hy2, 0x0010_0000) {
        let tiny = from_words(hx2, lx2);
        let _ = tiny * tiny;
        return;
    }
    let _ = from_words(hx2, lx2);
}

/// `e_remainder.c` — remainder(x, p). 11 conditional sites.
pub fn remainder(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let p = input[1];
    let hx = high_word(x);
    let _lx = low_word(x);
    let hp = high_word(p);
    let lp = low_word(p);
    let sx = hx & 0x8000_0000u32 as i32;
    let hpa = hp & 0x7fff_ffff;
    let hxa = hx & 0x7fff_ffff;

    // p == 0: NaN
    if ctx.branch(0, Cmp::Eq, ((hpa as u32) | lp) as f64, 0.0) {
        let _ = (x * p) / (x * p);
        return;
    }
    // x not finite
    if ctx.branch_i32(1, Cmp::Ge, hxa, 0x7ff0_0000) {
        let _ = (x * p) / (x * p);
        return;
    }
    // p is NaN
    if ctx.branch_i32(2, Cmp::Ge, hpa, 0x7ff0_0000) {
        if ctx.branch(3, Cmp::Ne, (((hpa - 0x7ff0_0000) as u32) | lp) as f64, 0.0) {
            let _ = (x * p) / (x * p);
            return;
        }
        // p is inf: remainder is x
        let _ = x;
        return;
    }
    let mut xa = x.abs();
    let pa = p.abs();
    // |p| <= 2^-1022 * 2: use fmod twice
    if ctx.branch_i32(4, Cmp::Le, hpa, 0x0020_0000) {
        if ctx.branch(5, Cmp::Gt, xa + xa, pa) {
            xa -= pa;
            if ctx.branch(6, Cmp::Ge, xa + xa, pa) {
                xa -= pa;
            }
        }
    } else {
        let p_half = 0.5 * pa;
        xa %= pa;
        if ctx.branch(7, Cmp::Gt, xa, p_half) {
            xa -= pa;
            if ctx.branch(8, Cmp::Ge, xa, p_half) {
                xa -= pa;
            }
        }
    }
    // clear the sign of -0
    if ctx.branch(
        9,
        Cmp::Eq,
        (high_word(xa) & 0x7fff_ffff) as f64 + low_word(xa) as f64,
        0.0,
    ) {
        let _ = 0.0;
        return;
    }
    let _ = ctx.branch_i32(10, Cmp::Ne, sx, 0);
}

/// `e_fmod.c` — fmod(x, y). 22 conditional sites, including the subnormal
/// normalization loops of lines 57–72 that the paper's Sect. D singles out
/// as unreachable for CoverMe's default sampling (subnormal inputs).
pub fn fmod(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let y = input[1];
    let mut hx = high_word(x);
    let lx = low_word(x) as i32;
    let mut hy = high_word(y);
    let ly = low_word(y) as i32;
    let sx = hx & 0x8000_0000u32 as i32;
    hx ^= sx;
    hy &= 0x7fff_ffff;

    // purge off exception values: y = 0, x inf/NaN, y NaN
    if ctx.branch(0, Cmp::Eq, (hy | ly) as f64, 0.0)
        || ctx.branch_i32(1, Cmp::Ge, hx, 0x7ff0_0000)
        || ctx.branch(
            2,
            Cmp::Gt,
            hy as f64 + if ly != 0 { 0.5 } else { 0.0 },
            0x7ff0_0000 as f64,
        )
    {
        let _ = (x * y) / (x * y);
        return;
    }
    // |x| < |y|: return x
    if ctx.branch_i32(3, Cmp::Le, hx, hy) {
        if ctx.branch_i32(4, Cmp::Lt, hx, hy)
            || ctx.branch(5, Cmp::Lt, (lx as u32) as f64, (ly as u32) as f64)
        {
            let _ = x;
            return;
        }
        // |x| == |y|: return x*0
        if ctx.branch(6, Cmp::Eq, (lx as u32) as f64, (ly as u32) as f64) {
            let _ = 0.0 * x;
            return;
        }
    }

    // determine ix = ilogb(x)
    let mut ix;
    if ctx.branch_i32(7, Cmp::Lt, hx, 0x0010_0000) {
        // subnormal x
        if ctx.branch_i32(8, Cmp::Eq, hx, 0) {
            ix = -1043;
            let mut i = lx;
            while ctx.branch_i32(9, Cmp::Gt, i, 0) {
                ix -= 1;
                i <<= 1;
            }
        } else {
            ix = -1022;
            let mut i = hx << 11;
            while ctx.branch_i32(10, Cmp::Gt, i, 0) {
                ix -= 1;
                i <<= 1;
            }
        }
    } else {
        ix = (hx >> 20) - 1023;
    }

    // determine iy = ilogb(y)
    let mut iy;
    if ctx.branch_i32(11, Cmp::Lt, hy, 0x0010_0000) {
        // subnormal y
        if ctx.branch_i32(12, Cmp::Eq, hy, 0) {
            iy = -1043;
            let mut i = ly;
            while ctx.branch_i32(13, Cmp::Gt, i, 0) {
                iy -= 1;
                i <<= 1;
            }
        } else {
            iy = -1022;
            let mut i = hy << 11;
            while ctx.branch_i32(14, Cmp::Gt, i, 0) {
                iy -= 1;
                i <<= 1;
            }
        }
    } else {
        iy = (hy >> 20) - 1023;
    }

    // set up {hx, lx}, {hy, ly} and align y to x
    let mut hx = if ctx.branch_i32(15, Cmp::Ge, ix, -1022) {
        0x0010_0000 | (0x000f_ffff & hx)
    } else {
        // subnormal x, shift x to normal
        let n = -1022 - ix;
        if ctx.branch_i32(16, Cmp::Le, n, 31) {
            (hx << n) | ((lx as u32) >> (32 - n)) as i32
        } else {
            lx << (n - 32)
        }
    };
    let hy_norm = if ctx.branch_i32(17, Cmp::Ge, iy, -1022) {
        0x0010_0000 | (0x000f_ffff & hy)
    } else {
        let n = -1022 - iy;
        if ctx.branch_i32(18, Cmp::Le, n, 31) {
            (hy << n) | ((ly as u32) >> (32 - n)) as i32
        } else {
            ly << (n - 32)
        }
    };

    // fixed-point fmod by repeated subtraction over the exponent gap
    let mut n = ix - iy;
    while ctx.branch_i32(19, Cmp::Ge, n, 1) {
        n -= 1;
        let z = hx - hy_norm;
        if ctx.branch_i32(20, Cmp::Lt, z, 0) {
            hx = hx.wrapping_add(hx);
        } else {
            if z == 0 {
                let _ = 0.0 * x;
                return;
            }
            hx = z.wrapping_add(z);
        }
    }
    let z = hx - hy_norm;
    if ctx.branch_i32(21, Cmp::Ge, z, 0) {
        hx = z;
    }
    // convert back to floating value and restore the sign
    let _ = if hx == 0 {
        0.0 * x
    } else {
        crate::bits::scalbn(f64::from(hx), iy - 20) * if sx != 0 { -1.0 } else { 1.0 }
    };
}

/// Number of conditional sites of each port in this module.
pub mod sites {
    /// Sites in [`super::ceil`].
    pub const CEIL: usize = 13;
    /// Sites in [`super::floor`].
    pub const FLOOR: usize = 13;
    /// Sites in [`super::rint`].
    pub const RINT: usize = 10;
    /// Sites in [`super::modf`].
    pub const MODF: usize = 5;
    /// Sites in [`super::ilogb`].
    pub const ILOGB: usize = 6;
    /// Sites in [`super::logb`].
    pub const LOGB: usize = 3;
    /// Sites in [`super::nextafter`].
    pub const NEXTAFTER: usize = 16;
    /// Sites in [`super::remainder`].
    pub const REMAINDER: usize = 11;
    /// Sites in [`super::fmod`].
    pub const FMOD: usize = 22;
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{BranchId, ExecCtx};

    fn run1(f: fn(&[f64], &mut ExecCtx), x: f64) -> ExecCtx {
        let mut ctx = ExecCtx::observe();
        f(&[x], &mut ctx);
        ctx
    }

    fn run2(f: fn(&[f64], &mut ExecCtx), x: f64, y: f64) -> ExecCtx {
        let mut ctx = ExecCtx::observe();
        f(&[x, y], &mut ctx);
        ctx
    }

    const INPUTS: &[f64] = &[
        0.0,
        -0.0,
        0.25,
        -0.25,
        0.5,
        1.0,
        -1.0,
        1.5,
        -1.5,
        2.5,
        7.0,
        1e10,
        4.6e15,
        1e300,
        -1e300,
        1e-310,
        -1e-310,
        5e-324,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
    ];

    #[test]
    fn unary_site_ids_stay_within_declared_ranges() {
        let cases: crate::SiteCases = &[
            (ceil, sites::CEIL),
            (floor, sites::FLOOR),
            (rint, sites::RINT),
            (modf, sites::MODF),
            (ilogb, sites::ILOGB),
            (logb, sites::LOGB),
        ];
        for &(f, declared) in cases {
            for &x in INPUTS {
                let ctx = run1(f, x);
                for e in ctx.trace() {
                    assert!((e.site as usize) < declared, "site {} on {}", e.site, x);
                }
            }
        }
    }

    #[test]
    fn binary_site_ids_stay_within_declared_ranges() {
        let cases: crate::SiteCases = &[
            (nextafter, sites::NEXTAFTER),
            (remainder, sites::REMAINDER),
            (fmod, sites::FMOD),
        ];
        for &(f, declared) in cases {
            for &x in INPUTS {
                for &y in INPUTS {
                    let ctx = run2(f, x, y);
                    for e in ctx.trace() {
                        assert!(
                            (e.site as usize) < declared,
                            "site {} on ({}, {})",
                            e.site,
                            x,
                            y
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn floor_and_ceil_cover_small_and_large_regimes() {
        assert!(run1(floor, 0.3).covered().contains(BranchId::true_of(1)));
        assert!(run1(floor, 3.7).covered().contains(BranchId::false_of(1)));
        assert!(run1(floor, 1e300).covered().contains(BranchId::true_of(8)));
        assert!(run1(ceil, f64::NAN)
            .covered()
            .contains(BranchId::true_of(9)));
    }

    #[test]
    fn fmod_subnormal_branches_need_subnormal_inputs() {
        // Normal inputs never reach the subnormal-x ladder (site 8).
        let ctx = run2(fmod, 10.0, 3.0);
        assert!(ctx.covered().contains(BranchId::false_of(7)));
        assert!(!ctx.covered().contains(BranchId::true_of(8)));
        // A subnormal x reaches it.
        let ctx = run2(fmod, 3e-320, 2.5e-321);
        assert!(ctx.covered().contains(BranchId::true_of(7)));
    }

    #[test]
    fn ilogb_zero_and_subnormal() {
        assert!(run1(ilogb, 0.0).covered().contains(BranchId::true_of(1)));
        assert!(run1(ilogb, 3e-320)
            .covered()
            .contains(BranchId::false_of(1)));
        assert!(run1(ilogb, 8.0).covered().contains(BranchId::true_of(5)));
        assert!(run1(ilogb, f64::INFINITY)
            .covered()
            .contains(BranchId::false_of(5)));
    }

    #[test]
    fn nextafter_equal_and_zero_cases() {
        assert!(run2(nextafter, 1.0, 1.0)
            .covered()
            .contains(BranchId::true_of(2)));
        assert!(run2(nextafter, 0.0, 1.0)
            .covered()
            .contains(BranchId::true_of(3)));
        assert!(run2(nextafter, 1.0, 2.0)
            .covered()
            .contains(BranchId::false_of(3)));
    }

    #[test]
    fn remainder_zero_divisor_is_domain_error() {
        assert!(run2(remainder, 1.0, 0.0)
            .covered()
            .contains(BranchId::true_of(0)));
        assert!(run2(remainder, 7.5, 2.0)
            .covered()
            .contains(BranchId::false_of(0)));
    }
}
