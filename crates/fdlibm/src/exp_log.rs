//! Exponential and logarithmic functions: `exp`, `log`, `log10`, `expm1`,
//! `log1p`.
//!
//! Ports of `e_exp.c`, `e_log.c`, `e_log10.c`, `s_expm1.c` and `s_log1p.c`.

use coverme_runtime::{Cmp, ExecCtx};

use crate::bits::{high_word, low_word, scalbn};

const HUGE: f64 = 1.0e300;
const TWOM1000: f64 = 9.332_636_185_032_189e-302;
const O_THRESHOLD: f64 = 7.097_827_128_933_840_868e+02;
const U_THRESHOLD: f64 = -7.451_332_191_019_412_221e+02;
const LN2_HI: f64 = 6.931_471_803_691_238_164e-01;
const LN2_LO: f64 = 1.908_214_929_270_587_700e-10;
const INVLN2: f64 = 1.442_695_040_888_963_387e+00;

/// `e_exp.c` — exp(x). 12 conditional sites.
pub fn exp(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let xsb = (hx >> 31) & 1;
    let hx = hx & 0x7fff_ffff;

    // |x| >= 709.78 or NaN
    if ctx.branch_i32(0, Cmp::Ge, hx, 0x4086_2e42) {
        // NaN or inf
        if ctx.branch_i32(1, Cmp::Ge, hx, 0x7ff0_0000) {
            let lx = low_word(x);
            // NaN
            if ctx.branch(2, Cmp::Ne, ((hx & 0xf_ffff) | lx as i32) as f64, 0.0) {
                let _ = x + x;
                return;
            }
            // exp(+inf) = inf, exp(-inf) = 0
            if ctx.branch_i32(3, Cmp::Eq, xsb, 0) {
                let _ = x;
            } else {
                let _ = 0.0;
            }
            return;
        }
        // overflow
        if ctx.branch(4, Cmp::Gt, x, O_THRESHOLD) {
            let _ = HUGE * HUGE;
            return;
        }
        // underflow
        if ctx.branch(5, Cmp::Lt, x, U_THRESHOLD) {
            let _ = TWOM1000 * TWOM1000;
            return;
        }
    }

    let k: i32;
    let (hi, lo);
    // |x| > 0.5 ln2
    if ctx.branch_i32(6, Cmp::Gt, hx, 0x3fd6_2e42) {
        // |x| < 1.5 ln2
        if ctx.branch_i32(7, Cmp::Lt, hx, 0x3ff0_a2b2) {
            hi = x - if xsb == 0 { LN2_HI } else { -LN2_HI };
            lo = if xsb == 0 { LN2_LO } else { -LN2_LO };
            k = 1 - xsb - xsb;
        } else {
            k = (INVLN2 * x + if xsb == 0 { 0.5 } else { -0.5 }) as i32;
            let t = f64::from(k);
            hi = x - t * LN2_HI;
            lo = t * LN2_LO;
        }
    } else if ctx.branch_i32(8, Cmp::Lt, hx, 0x3e30_0000) {
        // |x| < 2^-28: exp(tiny) = 1 + tiny
        if ctx.branch(9, Cmp::Gt, HUGE + x, 1.0) {
            let _ = 1.0 + x;
            return;
        }
        hi = x;
        lo = 0.0;
        k = 0;
    } else {
        hi = x;
        lo = 0.0;
        k = 0;
    }

    // x is now in the primary range
    let xr = hi - lo;
    let t = xr * xr;
    let c = xr
        - t * (0.166_666_666_666_666_02
            + t * (-2.775_723_454_378_660_6e-03 + t * 6.613_756_321_437_93e-05));
    let y = if ctx.branch_i32(10, Cmp::Eq, k, 0) {
        1.0 - ((xr * c) / (c - 2.0) - xr)
    } else {
        1.0 - ((lo - (xr * c) / (2.0 - c)) - hi)
    };
    // scale by 2^k
    if ctx.branch_i32(11, Cmp::Ge, k, -1021) {
        let _ = scalbn(y, k);
    } else {
        let _ = scalbn(y, k + 1000) * TWOM1000;
    }
}

/// `e_log.c` — log(x). 11 conditional sites.
pub fn log(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let mut hx = high_word(x);
    let lx = low_word(x);
    let mut k = 0i32;
    let mut x = x;

    // x < 2^-1022: zero, subnormal or negative
    if ctx.branch_i32(0, Cmp::Lt, hx, 0x0010_0000) {
        // +-0: -inf
        if ctx.branch(1, Cmp::Eq, ((hx & 0x7fff_ffff) | lx as i32) as f64, 0.0) {
            let _ = -1.0 / 0.0;
            return;
        }
        // negative: NaN
        if ctx.branch_i32(2, Cmp::Lt, hx, 0) {
            let _ = (x - x) / 0.0;
            return;
        }
        // subnormal: scale up
        k -= 54;
        x *= 1.8014398509481984e16; // 2^54
        hx = high_word(x);
    }
    // inf or NaN
    if ctx.branch_i32(3, Cmp::Ge, hx, 0x7ff0_0000) {
        let _ = x + x;
        return;
    }
    k += (hx >> 20) - 1023;
    let hx_frac = hx & 0x000f_ffff;
    let i = (hx_frac + 0x9_5f64) & 0x10_0000;
    let xn = crate::bits::with_high_word(x, hx_frac | (i ^ 0x3ff0_0000));
    let k = k + (i >> 20);
    let f = xn - 1.0;
    let dk = f64::from(k);

    // |f| < 2^-20: 1+f very close to 1
    if ctx.branch_i32(4, Cmp::Lt, (0x0010_0000 + hx_frac) & 0xf_ffff, 0x3_ffff) {
        // f == 0
        if ctx.branch(5, Cmp::Eq, f, 0.0) {
            if ctx.branch_i32(6, Cmp::Eq, k, 0) {
                let _ = 0.0;
                return;
            }
            let _ = dk * LN2_HI + dk * LN2_LO;
            return;
        }
        let r = f * f * (0.5 - 0.333_333_333_333_333_3 * f);
        if ctx.branch_i32(7, Cmp::Eq, k, 0) {
            let _ = f - r;
            return;
        }
        let _ = dk * LN2_HI - ((r - dk * LN2_LO) - f);
        return;
    }
    let s = f / (2.0 + f);
    let z = s * s;
    let ii = hx_frac - 0x6147a;
    let w = z * z;
    let t1 = w * (0.399_999_999_999_941_14 + w * 0.222_221_984_321_497_84);
    let t2 = z * (0.666_666_666_666_673_5 + w * 0.285_714_287_436_623_9);
    let jj = 0x6b851 - hx_frac;
    let r = t2 + t1;
    // the (i|j) > 0 split of the original
    if ctx.branch_i32(8, Cmp::Gt, ii | jj, 0) {
        let hfsq = 0.5 * f * f;
        if ctx.branch_i32(9, Cmp::Eq, k, 0) {
            let _ = f - (hfsq - s * (hfsq + r));
            return;
        }
        let _ = dk * LN2_HI - ((hfsq - (s * (hfsq + r) + dk * LN2_LO)) - f);
    } else if ctx.branch_i32(10, Cmp::Eq, k, 0) {
        let _ = f - s * (f - r);
    } else {
        let _ = dk * LN2_HI - ((s * (f - r) - dk * LN2_LO) - f);
    }
}

/// `e_log10.c` — log10(x). 4 conditional sites.
pub fn log10(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let lx = low_word(x);
    let mut k = 0i32;
    let mut x = x;

    // x < 2^-1022
    if ctx.branch_i32(0, Cmp::Lt, hx, 0x0010_0000) {
        if ctx.branch(1, Cmp::Eq, ((hx & 0x7fff_ffff) | lx as i32) as f64, 0.0) {
            let _ = -1.0 / 0.0;
            return;
        }
        if ctx.branch_i32(2, Cmp::Lt, hx, 0) {
            let _ = (x - x) / 0.0;
            return;
        }
        k -= 54;
        x *= 1.8014398509481984e16;
    }
    if ctx.branch_i32(3, Cmp::Ge, high_word(x), 0x7ff0_0000) {
        let _ = x + x;
        return;
    }
    let hx2 = high_word(x);
    k += (hx2 >> 20) - 1023;
    let i = ((k as u32) & 0x8000_0000) >> 31;
    let hx3 = (hx2 & 0x000f_ffff) | ((0x3ff - i as i32) << 20);
    let y = f64::from(k + i as i32);
    let xs = crate::bits::with_high_word(x, hx3);
    let _ = 4.342_944_819_032_518_28e-01 * xs.ln() + y * 3.010_299_956_639_811_95e-01;
}

/// `s_expm1.c` — expm1(x). 21 conditional sites.
pub fn expm1(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let xsb = hx & 0x8000_0000u32 as i32;
    let hx = hx & 0x7fff_ffff;
    let mut x = x;

    // huge and non-finite arguments
    if ctx.branch_i32(0, Cmp::Ge, hx, 0x4043_687a) {
        // |x| >= 56*ln2
        if ctx.branch_i32(1, Cmp::Ge, hx, 0x4086_2e42) {
            // |x| >= 709.78
            if ctx.branch_i32(2, Cmp::Ge, hx, 0x7ff0_0000) {
                let lx = low_word(x);
                // NaN
                if ctx.branch(3, Cmp::Ne, ((hx & 0xf_ffff) | lx as i32) as f64, 0.0) {
                    let _ = x + x;
                    return;
                }
                // expm1(+inf)=inf, expm1(-inf)=-1
                if ctx.branch_i32(4, Cmp::Eq, xsb, 0) {
                    let _ = x;
                } else {
                    let _ = -1.0;
                }
                return;
            }
            if ctx.branch(5, Cmp::Gt, x, O_THRESHOLD) {
                let _ = HUGE * HUGE; // overflow
                return;
            }
        }
        // x < -56*ln2: return -1 with inexact
        if ctx.branch_i32(6, Cmp::Ne, xsb, 0) {
            if ctx.branch(7, Cmp::Lt, x + TWOM1000, 0.0) {
                let _ = TWOM1000 - 1.0;
                return;
            }
        }
    }

    let k: i32;
    let (hi, lo);
    let mut c = 0.0;
    // |x| > 0.5 ln2
    if ctx.branch_i32(8, Cmp::Gt, hx, 0x3fd6_2e42) {
        if ctx.branch_i32(9, Cmp::Lt, hx, 0x3ff0_a2b2) {
            // |x| < 1.5 ln2
            if ctx.branch_i32(10, Cmp::Eq, xsb, 0) {
                hi = x - LN2_HI;
                lo = LN2_LO;
                k = 1;
            } else {
                hi = x + LN2_HI;
                lo = -LN2_LO;
                k = -1;
            }
        } else {
            k = (INVLN2 * x + if xsb == 0 { 0.5 } else { -0.5 }) as i32;
            let t = f64::from(k);
            hi = x - t * LN2_HI;
            lo = t * LN2_LO;
        }
        x = hi - lo;
        c = (hi - x) - lo;
    } else if ctx.branch_i32(11, Cmp::Lt, hx, 0x3c90_0000) {
        // |x| < 2^-54: return x
        let _ = x;
        return;
    } else {
        k = 0;
        hi = x;
        lo = 0.0;
        let _ = (hi, lo);
    }

    // x is in the primary range
    let hfx = 0.5 * x;
    let hxs = x * hfx;
    let r1 = 1.0 + hxs * (-3.333_333_333_333_313e-02 + hxs * 1.587_301_587_288_769e-03);
    let t = 3.0 - r1 * hfx;
    let e = hxs * ((r1 - t) / (6.0 - x * t));

    if ctx.branch_i32(12, Cmp::Eq, k, 0) {
        let _ = x - (x * e - hxs); // c is 0
        return;
    }
    let e = x * (e - c) - c;
    let e = e - hxs;
    if ctx.branch_i32(13, Cmp::Eq, k, -1) {
        let _ = 0.5 * (x - e) - 0.5;
        return;
    }
    if ctx.branch_i32(14, Cmp::Eq, k, 1) {
        if ctx.branch(15, Cmp::Lt, x, -0.25) {
            let _ = -2.0 * (e - (x + 0.5));
        } else {
            let _ = 1.0 + 2.0 * (x - e);
        }
        return;
    }
    // k is large enough that 2^k overflows the correction path
    if ctx.branch_i32(16, Cmp::Le, k, -2) {
        let _ = scalbn(1.0 - (e - x), k) - 1.0;
        return;
    }
    if ctx.branch_i32(17, Cmp::Gt, k, 56) {
        let y = 1.0 - (e - x);
        // k == 1024: avoid double rounding in the scale
        if ctx.branch_i32(18, Cmp::Eq, k, 1024) {
            let _ = scalbn(y * 2.0, k - 1);
        } else {
            let _ = scalbn(y, k);
        }
        return;
    }
    if ctx.branch_i32(19, Cmp::Lt, k, 20) {
        let t = crate::bits::from_words(0x3ff0_0000 - (0x20_0000 >> k), 0);
        let y = t - (e - x);
        let _ = scalbn(y, k);
    } else {
        let t = crate::bits::from_words((0x3ff - k) << 20, 0);
        let mut y = x - (e + t);
        y += 1.0;
        let _ = scalbn(y, k);
        let _ = ctx.branch_i32(20, Cmp::Gt, k, 100); // tail guard of the original
    }
}

/// `s_log1p.c` — log1p(x). 18 conditional sites.
pub fn log1p(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let ax = hx & 0x7fff_ffff;
    let mut k = 1i32;
    let mut f = 0.0f64;
    let mut hu = 0i32;
    let mut c = 0.0f64;

    // x < 0.41422
    if ctx.branch_i32(0, Cmp::Lt, hx, 0x3fda_827a) {
        // x <= -1
        if ctx.branch_i32(1, Cmp::Ge, ax, 0x3ff0_0000) {
            if ctx.branch(2, Cmp::Eq, x, -1.0) {
                let _ = -TWOM1000 / 0.0; // log1p(-1) = -inf
            } else {
                let _ = (x - x) / (x - x); // log1p(x < -1) = NaN
            }
            return;
        }
        // |x| < 2^-29
        if ctx.branch_i32(3, Cmp::Lt, ax, 0x3e20_0000) {
            // |x| < 2^-54
            if ctx.branch_i32(4, Cmp::Lt, ax, 0x3c90_0000) {
                let _ = x;
            } else {
                let _ = x - x * x * 0.5;
            }
            return;
        }
        // -0.2929 < x < 0.41422
        if ctx.branch_i32(5, Cmp::Gt, hx, 0) || ctx.branch_i32(6, Cmp::Le, hx, 0xbfd2bec3u32 as i32)
        {
            k = 0;
            f = x;
            hu = 1;
        }
    }
    // x is inf or NaN
    if ctx.branch_i32(7, Cmp::Ge, hx, 0x7ff0_0000) {
        let _ = x + x;
        return;
    }
    if ctx.branch_i32(8, Cmp::Ne, k, 0) {
        let u;
        if ctx.branch_i32(9, Cmp::Lt, hx, 0x4340_0000) {
            u = 1.0 + x;
            hu = high_word(u);
            k = (hu >> 20) - 1023;
            c = if k > 0 { 1.0 - (u - x) } else { x - (u - 1.0) };
            c /= u;
        } else {
            u = x;
            hu = high_word(u);
            k = (hu >> 20) - 1023;
            c = 0.0;
        }
        hu &= 0x000f_ffff;
        let un;
        if ctx.branch_i32(10, Cmp::Lt, hu, 0x6_a09e) {
            un = crate::bits::with_high_word(u, hu | 0x3ff0_0000);
        } else {
            k += 1;
            un = crate::bits::with_high_word(u, hu | 0x3fe0_0000);
            hu = (0x0010_0000 - hu) >> 2;
        }
        f = un - 1.0;
    }
    let hfsq = 0.5 * f * f;
    // |f| < 2^-20
    if ctx.branch_i32(11, Cmp::Eq, hu, 0) {
        if ctx.branch(12, Cmp::Eq, f, 0.0) {
            if ctx.branch_i32(13, Cmp::Eq, k, 0) {
                let _ = 0.0;
            } else {
                let _ = f64::from(k) * LN2_HI + (c + f64::from(k) * LN2_LO);
            }
            return;
        }
        let r = hfsq * (1.0 - 0.666_666_666_666_666_6 * f);
        if ctx.branch_i32(14, Cmp::Eq, k, 0) {
            let _ = f - r;
        } else {
            let _ = f64::from(k) * LN2_HI - ((r - (f64::from(k) * LN2_LO + c)) - f);
        }
        return;
    }
    let s = f / (2.0 + f);
    let z = s * s;
    let r = z
        * (0.666_666_666_666_673_5 + z * (0.399_999_999_999_941_14 + z * 0.285_714_287_436_623_9));
    if ctx.branch_i32(15, Cmp::Eq, k, 0) {
        let _ = f - (hfsq - s * (hfsq + r));
        return;
    }
    if ctx.branch_i32(16, Cmp::Gt, k, 1000) {
        let _ = f64::from(k); // unreachable for finite inputs; tail guard
    }
    let _ = ctx.branch_i32(17, Cmp::Lt, k, 0);
    let _ = f64::from(k) * LN2_HI - ((hfsq - (s * (hfsq + r) + (f64::from(k) * LN2_LO + c))) - f);
}

/// Number of conditional sites of each port in this module.
pub mod sites {
    /// Sites in [`super::exp`].
    pub const EXP: usize = 12;
    /// Sites in [`super::log`].
    pub const LOG: usize = 11;
    /// Sites in [`super::log10`].
    pub const LOG10: usize = 4;
    /// Sites in [`super::expm1`].
    pub const EXPM1: usize = 21;
    /// Sites in [`super::log1p`].
    pub const LOG1P: usize = 18;
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{BranchId, ExecCtx};

    fn run(f: fn(&[f64], &mut ExecCtx), x: f64) -> ExecCtx {
        let mut ctx = ExecCtx::observe();
        f(&[x], &mut ctx);
        ctx
    }

    #[test]
    fn site_ids_stay_within_declared_ranges() {
        let cases: crate::SiteCases = &[
            (exp, sites::EXP),
            (log, sites::LOG),
            (log10, sites::LOG10),
            (expm1, sites::EXPM1),
            (log1p, sites::LOG1P),
        ];
        let inputs = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            -0.5,
            1e-30,
            -1e-30,
            2.0,
            10.0,
            100.0,
            710.0,
            -746.0,
            -800.0,
            1e300,
            -1e300,
            1e-320,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            0.3,
            -0.9999,
            40.0,
            -40.0,
        ];
        for &(f, declared) in cases {
            for &x in &inputs {
                let ctx = run(f, x);
                for event in ctx.trace() {
                    assert!(
                        (event.site as usize) < declared,
                        "site {} >= {} on input {}",
                        event.site,
                        declared,
                        x
                    );
                }
            }
        }
    }

    #[test]
    fn exp_overflow_and_underflow_branches() {
        assert!(run(exp, 1000.0).covered().contains(BranchId::true_of(4)));
        assert!(run(exp, -1000.0).covered().contains(BranchId::true_of(5)));
        assert!(run(exp, f64::NAN).covered().contains(BranchId::true_of(2)));
        assert!(run(exp, f64::INFINITY)
            .covered()
            .contains(BranchId::true_of(3)));
    }

    #[test]
    fn log_domain_branches() {
        assert!(run(log, 0.0).covered().contains(BranchId::true_of(1)));
        assert!(run(log, -1.0).covered().contains(BranchId::true_of(2)));
        assert!(run(log, 1e-310).covered().contains(BranchId::false_of(2)));
        assert!(run(log, f64::INFINITY)
            .covered()
            .contains(BranchId::true_of(3)));
    }

    #[test]
    fn log1p_minus_one_and_nan_domain() {
        assert!(run(log1p, -1.0).covered().contains(BranchId::true_of(2)));
        assert!(run(log1p, -2.0).covered().contains(BranchId::false_of(2)));
    }
}
