//! Powers and roots: `sqrt`, `cbrt`, `pow`, `hypot`, `scalb`.
//!
//! Ports of `e_sqrt.c`, `s_cbrt.c`, `e_pow.c`, `e_hypot.c` and `e_scalb.c`.

use coverme_runtime::{Cmp, ExecCtx};

use crate::bits::{high_word, low_word, scalbn, with_high_word};

const HUGE: f64 = 1.0e300;
const TINY: f64 = 1.0e-300;

/// `e_sqrt.c` — sqrt(x). 14 conditional sites (the bit-by-bit loop of the
/// original is kept as loops over the significand words).
pub fn sqrt(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let mut ix0 = high_word(x);
    let mut ix1 = low_word(x) as i64;

    // take care of inf and NaN
    if ctx.branch_i32(0, Cmp::Eq, ix0 & 0x7ff0_0000, 0x7ff0_0000) {
        let _ = x * x + x;
        return;
    }
    // take care of zero
    if ctx.branch_i32(1, Cmp::Le, ix0, 0) {
        // sqrt(+-0) = +-0
        if ctx.branch(2, Cmp::Eq, ((ix0 & 0x7fff_ffff) as i64 | ix1) as f64, 0.0) {
            let _ = x;
            return;
        }
        // sqrt(-ve) = NaN
        if ctx.branch_i32(3, Cmp::Lt, ix0, 0) {
            let _ = (x - x) / (x - x);
            return;
        }
    }
    // normalize x
    let mut m = ix0 >> 20;
    // subnormal x
    if ctx.branch_i32(4, Cmp::Eq, m, 0) {
        while ctx.branch_i32(5, Cmp::Eq, ix0, 0) {
            m -= 21;
            ix0 |= (ix1 >> 11) as i32;
            ix1 <<= 21;
        }
        let mut i = 0;
        while ctx.branch_i32(6, Cmp::Eq, ix0 & 0x0010_0000, 0) {
            ix0 <<= 1;
            i += 1;
            if i > 64 {
                break;
            }
        }
        m -= i - 1;
        ix0 |= (ix1 >> (32 - i)) as i32;
        ix1 <<= i;
    }
    m -= 1023;
    ix0 = (ix0 & 0x000f_ffff) | 0x0010_0000;
    // odd exponent, double x to make it even
    if ctx.branch_i32(7, Cmp::Ne, m & 1, 0) {
        ix0 = ix0
            .wrapping_add(ix0)
            .wrapping_add((((ix1 as u64) & 0x8000_0000) >> 31) as i32);
        ix1 = ((ix1 as u64) << 1) as i64;
    }
    m >>= 1;

    // generate sqrt(x) bit by bit (shortened: 26 high bits, then refine)
    ix0 = ix0
        .wrapping_add(ix0)
        .wrapping_add((((ix1 as u64) & 0x8000_0000) >> 31) as i32);
    ix1 = ((ix1 as u64) << 1) as i64;
    let mut q = 0i32;
    let mut s0 = 0i32;
    let mut r = 0x0020_0000i32;
    while ctx.branch_i32(8, Cmp::Ne, r, 0) {
        let t = s0 + r;
        if ctx.branch_i32(9, Cmp::Le, t, ix0) {
            s0 = t.wrapping_add(r);
            ix0 = ix0.wrapping_sub(t);
            q = q.wrapping_add(r);
        }
        ix0 = ix0
            .wrapping_add(ix0)
            .wrapping_add((((ix1 as u64) & 0x8000_0000) >> 31) as i32);
        ix1 = ((ix1 as u64) << 1) as i64;
        r >>= 1;
    }
    // use floating add to find out rounding direction
    if ctx.branch(10, Cmp::Ne, (ix0 as i64 | ix1) as f64, 0.0) {
        let z = 1.0 - TINY; // trigger inexact flag
        if ctx.branch(11, Cmp::Ge, z, 1.0) {
            if ctx.branch(12, Cmp::Gt, z, 1.0) {
                q += 2;
            } else {
                q += q & 1;
            }
        }
    }
    let ix_res = (q >> 1) + 0x3fe0_0000 + (m << 20);
    let result = with_high_word(f64::from_bits((low_word(x) as u64) | 0), ix_res);
    let _ = ctx.branch(13, Cmp::Ge, result, 0.0);
}

/// `s_cbrt.c` — cbrt(x). 3 conditional sites.
pub fn cbrt(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x) & 0x7fff_ffff;

    // cbrt(NaN, INF) is itself
    if ctx.branch_i32(0, Cmp::Ge, hx, 0x7ff0_0000) {
        let _ = x + x;
        return;
    }
    let lx = low_word(x);
    // cbrt(0) is itself
    if ctx.branch(1, Cmp::Eq, (hx | lx as i32) as f64, 0.0) {
        let _ = x;
        return;
    }
    // rough cbrt then two Newton steps
    let sign = x.is_sign_negative();
    let t0 = if ctx.branch_i32(2, Cmp::Lt, hx, 0x0010_0000) {
        // subnormal: scale up first
        (x.abs() * 2f64.powi(54)).powf(1.0 / 3.0) * 2f64.powi(-18)
    } else {
        x.abs().powf(1.0 / 3.0)
    };
    let t1 = t0 - (t0 - x.abs() / (t0 * t0)) / 3.0;
    let _ = if sign { -t1 } else { t1 };
}

/// `e_pow.c` — pow(x, y). 30 conditional sites (the original has 57 two-way
/// branches; the special-case ladder is preserved, the final scaling ladder
/// is compressed).
pub fn pow(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let y = input[1];
    let hx = high_word(x);
    let lx = low_word(x) as i32;
    let hy = high_word(y);
    let ly = low_word(y) as i32;
    let ix = hx & 0x7fff_ffff;
    let iy = hy & 0x7fff_ffff;

    // y == 0: x**0 = 1
    if ctx.branch(0, Cmp::Eq, (iy | ly) as f64, 0.0) {
        let _ = 1.0;
        return;
    }
    // x or y is NaN
    if ctx.branch_i32(1, Cmp::Gt, ix, 0x7ff0_0000)
        || (ctx.branch_i32(2, Cmp::Eq, ix, 0x7ff0_0000) && ctx.branch_i32(3, Cmp::Ne, lx, 0))
        || ctx.branch_i32(4, Cmp::Gt, iy, 0x7ff0_0000)
        || (ctx.branch_i32(5, Cmp::Eq, iy, 0x7ff0_0000) && ctx.branch_i32(6, Cmp::Ne, ly, 0))
    {
        let _ = x + y;
        return;
    }

    // determine if y is an odd int when x < 0
    let mut yisint = 0;
    if ctx.branch_i32(7, Cmp::Lt, hx, 0) {
        if ctx.branch_i32(8, Cmp::Ge, iy, 0x4340_0000) {
            yisint = 2; // even integer y
        } else if ctx.branch_i32(9, Cmp::Ge, iy, 0x3ff0_0000) {
            let k = (iy >> 20) - 0x3ff;
            if ctx.branch_i32(10, Cmp::Gt, k, 20) {
                let j = ly >> (52 - k);
                if ctx.branch_i32(11, Cmp::Eq, j << (52 - k), ly) {
                    yisint = 2 - (j & 1);
                }
            } else if ctx.branch_i32(12, Cmp::Eq, ly, 0) {
                let j = iy >> (20 - k);
                if ctx.branch_i32(13, Cmp::Eq, j << (20 - k), iy) {
                    yisint = 2 - (j & 1);
                }
            }
        }
    }

    // special value of y
    if ctx.branch_i32(14, Cmp::Eq, ly, 0) {
        // y is +-inf
        if ctx.branch_i32(15, Cmp::Eq, iy, 0x7ff0_0000) {
            if ctx.branch(16, Cmp::Eq, ((ix - 0x3ff0_0000) | lx) as f64, 0.0) {
                let _ = y - y; // +-1**+-inf is NaN (fdlibm 5.3 semantics)
            } else if ctx.branch_i32(17, Cmp::Ge, ix, 0x3ff0_0000) {
                // (|x|>1)**+-inf = inf, 0
                let _ = if hy >= 0 { y } else { 0.0 };
            } else {
                // (|x|<1)**-,+inf = inf, 0
                let _ = if hy < 0 { -y } else { 0.0 };
            }
            return;
        }
        // y is +-1: x**1 = x, x**-1 = 1/x
        if ctx.branch_i32(18, Cmp::Eq, iy, 0x3ff0_0000) {
            let _ = if hy < 0 { 1.0 / x } else { x };
            return;
        }
        // y is 2: x*x
        if ctx.branch_i32(19, Cmp::Eq, hy, 0x4000_0000) {
            let _ = x * x;
            return;
        }
        // y is 0.5: sqrt(x) for x >= 0
        if ctx.branch_i32(20, Cmp::Eq, hy, 0x3fe0_0000) {
            if ctx.branch_i32(21, Cmp::Ge, hx, 0) {
                let _ = x.sqrt();
                return;
            }
        }
    }

    // special value of x
    if ctx.branch_i32(22, Cmp::Eq, lx, 0) {
        // x is +-0, +-inf, +-1
        if ctx.branch_i32(23, Cmp::Eq, ix, 0x7ff0_0000)
            || ctx.branch_i32(24, Cmp::Eq, ix, 0)
            || ctx.branch_i32(25, Cmp::Eq, ix, 0x3ff0_0000)
        {
            let mut z = x.abs().powf(y.abs());
            if ctx.branch_i32(26, Cmp::Lt, hy, 0) {
                z = 1.0 / z;
            }
            // (-0)**odd or (-1)**odd sign handling
            if ctx.branch_i32(27, Cmp::Lt, hx, 0) && yisint == 1 {
                z = -z;
            }
            let _ = z;
            return;
        }
    }

    // (x < 0)**(non-int) is NaN
    if ctx.branch_i32(28, Cmp::Lt, hx, 0) {
        if yisint == 0 {
            let _ = (x - x) / (x - x);
            return;
        }
    }

    // |y| is huge: results over/underflow fast
    let result = x.abs().powf(y);
    let result = if hx < 0 && yisint == 1 {
        -result
    } else {
        result
    };
    // overflow / underflow flags of the original final scaling
    if ctx.branch(29, Cmp::Gt, result.abs(), 1e308) {
        let _ = HUGE * HUGE;
    }
}

/// `e_hypot.c` — hypot(x, y). 11 conditional sites.
pub fn hypot(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let y = input[1];
    let mut ha = high_word(x) & 0x7fff_ffff;
    let mut hb = high_word(y) & 0x7fff_ffff;

    // arrange |a| >= |b|
    let (mut a, mut b);
    if ctx.branch_i32(0, Cmp::Gt, hb, ha) {
        a = y.abs();
        b = x.abs();
        std::mem::swap(&mut ha, &mut hb);
    } else {
        a = x.abs();
        b = y.abs();
    }

    // x / y is tiny: return |a|
    if ctx.branch_i32(1, Cmp::Gt, ha - hb, 0x3c0_0000) {
        let _ = a + b;
        return;
    }
    let mut k = 0i32;
    // a > 2^500: scale down
    if ctx.branch_i32(2, Cmp::Gt, ha, 0x5f30_0000) {
        // inf or NaN
        if ctx.branch_i32(3, Cmp::Ge, ha, 0x7ff0_0000) {
            let w = a + b;
            if ctx.branch(4, Cmp::Eq, (low_word(a) as i32) as f64, 0.0) {
                let _ = a;
            }
            if ctx.branch(
                5,
                Cmp::Eq,
                ((hb ^ 0x7ff0_0000) | low_word(b) as i32) as f64,
                0.0,
            ) {
                let _ = b;
            }
            let _ = w;
            return;
        }
        ha -= 0x2580_0000;
        hb -= 0x2580_0000;
        k += 600;
        a = with_high_word(a, ha);
        b = with_high_word(b, hb);
    }
    // b < 2^-500: scale up
    if ctx.branch_i32(6, Cmp::Lt, hb, 0x20b0_0000) {
        // subnormal b or zero
        if ctx.branch_i32(7, Cmp::Lt, hb, 0x0010_0000) {
            if ctx.branch(8, Cmp::Eq, (hb | low_word(b) as i32) as f64, 0.0) {
                let _ = a;
                return;
            }
            let t1 = f64::from_bits(0x7fd0_0000_0000_0000); // 2^1022
            b *= t1;
            a *= t1;
            k -= 1022;
        } else {
            ha += 0x2580_0000;
            hb += 0x2580_0000;
            k -= 600;
            a = with_high_word(a, ha);
            b = with_high_word(b, hb);
        }
    }
    // medium-size a and b
    let w = a - b;
    let w = if ctx.branch(9, Cmp::Gt, w, b) {
        (a * a + b * b).sqrt()
    } else {
        let t = a + a;
        let y1 = with_high_word(b, high_word(b));
        (t * y1 + (b * b)).sqrt()
    };
    if ctx.branch_i32(10, Cmp::Ne, k, 0) {
        let _ = scalbn(w, k);
    } else {
        let _ = w;
    }
}

/// `e_scalb.c` — scalb(x, fn). 7 conditional sites.
pub fn scalb(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let fne = input[1];

    // x or fn is NaN
    if ctx.branch(0, Cmp::Ne, x, x) || ctx.branch(1, Cmp::Ne, fne, fne) {
        let _ = x * fne;
        return;
    }
    // fn is +-inf
    if ctx.branch(2, Cmp::Ge, fne.abs(), f64::INFINITY) {
        if ctx.branch(3, Cmp::Gt, fne, 0.0) {
            let _ = x * fne;
        } else {
            let _ = x / (-fne);
        }
        return;
    }
    // fn not an integer: NaN
    if ctx.branch(4, Cmp::Ne, fne.floor(), fne) {
        let _ = (fne - fne) / (fne - fne);
        return;
    }
    // |fn| > 65000
    if ctx.branch(5, Cmp::Gt, fne, 65000.0) {
        let _ = scalbn(x, 65000);
        return;
    }
    if ctx.branch(6, Cmp::Lt, -fne, -65000.0) {
        // equivalent to fn > -65000 in the original's double negation
        let _ = scalbn(x, fne as i32);
        return;
    }
    let _ = scalbn(x, -65000);
}

/// Number of conditional sites of each port in this module.
pub mod sites {
    /// Sites in [`super::sqrt`].
    pub const SQRT: usize = 14;
    /// Sites in [`super::cbrt`].
    pub const CBRT: usize = 3;
    /// Sites in [`super::pow`].
    pub const POW: usize = 30;
    /// Sites in [`super::hypot`].
    pub const HYPOT: usize = 11;
    /// Sites in [`super::scalb`].
    pub const SCALB: usize = 7;
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{BranchId, ExecCtx};

    fn run1(f: fn(&[f64], &mut ExecCtx), x: f64) -> ExecCtx {
        let mut ctx = ExecCtx::observe();
        f(&[x], &mut ctx);
        ctx
    }

    fn run2(f: fn(&[f64], &mut ExecCtx), x: f64, y: f64) -> ExecCtx {
        let mut ctx = ExecCtx::observe();
        f(&[x, y], &mut ctx);
        ctx
    }

    const INPUTS: &[f64] = &[
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.5,
        -0.5,
        2.0,
        -2.0,
        3.7,
        1e300,
        -1e300,
        1e-320,
        -1e-320,
        65001.0,
        -65001.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
    ];

    #[test]
    fn unary_site_ids_stay_within_declared_ranges() {
        for &(f, declared) in &[
            (sqrt as fn(&[f64], &mut ExecCtx), sites::SQRT),
            (cbrt, sites::CBRT),
        ] {
            for &x in INPUTS {
                let ctx = run1(f, x);
                for e in ctx.trace() {
                    assert!((e.site as usize) < declared, "site {} on {}", e.site, x);
                }
            }
        }
    }

    #[test]
    fn binary_site_ids_stay_within_declared_ranges() {
        let cases: crate::SiteCases = &[
            (pow, sites::POW),
            (hypot, sites::HYPOT),
            (scalb, sites::SCALB),
        ];
        for &(f, declared) in cases {
            for &x in INPUTS {
                for &y in INPUTS {
                    let ctx = run2(f, x, y);
                    for e in ctx.trace() {
                        assert!(
                            (e.site as usize) < declared,
                            "site {} on ({}, {})",
                            e.site,
                            x,
                            y
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sqrt_special_cases() {
        assert!(run1(sqrt, -1.0).covered().contains(BranchId::true_of(3)));
        assert!(run1(sqrt, 0.0).covered().contains(BranchId::true_of(2)));
        assert!(run1(sqrt, f64::NAN)
            .covered()
            .contains(BranchId::true_of(0)));
        assert!(run1(sqrt, 4.0).covered().contains(BranchId::false_of(0)));
    }

    #[test]
    fn pow_special_cases() {
        assert!(run2(pow, 2.0, 0.0).covered().contains(BranchId::true_of(0)));
        assert!(run2(pow, 2.0, 1.0)
            .covered()
            .contains(BranchId::true_of(18)));
        assert!(run2(pow, 2.0, 2.0)
            .covered()
            .contains(BranchId::true_of(19)));
        assert!(run2(pow, 4.0, 0.5)
            .covered()
            .contains(BranchId::true_of(20)));
        assert!(run2(pow, -1.5, 0.5)
            .covered()
            .contains(BranchId::true_of(28)));
    }

    #[test]
    fn hypot_and_scalb_paths() {
        assert!(run2(hypot, 1.0, 1e300)
            .covered()
            .contains(BranchId::true_of(0)));
        assert!(run2(hypot, 3.0, 4.0)
            .covered()
            .contains(BranchId::false_of(1)));
        assert!(run2(scalb, 1.5, 3.5)
            .covered()
            .contains(BranchId::true_of(4)));
        assert!(run2(scalb, 1.5, f64::INFINITY)
            .covered()
            .contains(BranchId::true_of(2)));
    }
}
