//! The error function and its complement: `erf`, `erfc`.
//!
//! Ports of `s_erf.c` (both entry points share the interval-splitting
//! structure of the original: tiny, |x| < 0.84375, < 1.25, < 6 / < 28,
//! and the saturation tails).

use coverme_runtime::{Cmp, ExecCtx};

use crate::bits::high_word;

const TINY: f64 = 1.0e-300;
const EFX: f64 = 1.283_791_670_955_125_74e-01;
const EFX8: f64 = 1.027_033_336_764_100_6e+00;
const ERX: f64 = 8.450_629_115_104_675e-01;

fn poly_small(z: f64) -> (f64, f64) {
    let r = 1.283_791_670_955_125_74e-01
        + z * (-3.250_421_072_470_015e-01 + z * -2.848_174_957_559_851e-02);
    let s = 1.0 + z * (3.979_172_239_591_553e-01 + z * 6.502_222_499_887_672e-02);
    (r, s)
}

/// `s_erf.c` — erf(x). 10 conditional sites.
pub fn erf(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let ix = hx & 0x7fff_ffff;

    // erf(NaN) = NaN, erf(+-inf) = +-1
    if ctx.branch_i32(0, Cmp::Ge, ix, 0x7ff0_0000) {
        let i = ((hx as u32) >> 31) as i32;
        let _ = f64::from(1 - i - i) + 1.0 / x;
        return;
    }
    // |x| < 0.84375
    if ctx.branch_i32(1, Cmp::Lt, ix, 0x3feb_0000) {
        // |x| < 2^-28
        if ctx.branch_i32(2, Cmp::Lt, ix, 0x3e30_0000) {
            // |x| < 2^-1022 (subnormal): avoid underflow
            if ctx.branch_i32(3, Cmp::Lt, ix, 0x0080_0000) {
                let _ = 0.125 * (8.0 * x + EFX8 * x);
                return;
            }
            let _ = x + EFX * x;
            return;
        }
        let z = x * x;
        let (r, s) = poly_small(z);
        let _ = x + x * (r / s);
        return;
    }
    // |x| < 1.25
    if ctx.branch_i32(4, Cmp::Lt, ix, 0x3ff4_0000) {
        let s = x.abs() - 1.0;
        let p = -2.362_118_560_752_659e-03 + s * 4.148_561_186_837_483e-01;
        let q = 1.0 + s * 1.064_208_804_008_442e-01;
        if ctx.branch_i32(5, Cmp::Ge, hx, 0) {
            let _ = ERX + p / q;
        } else {
            let _ = -ERX - p / q;
        }
        return;
    }
    // |x| >= 6: erf saturates to +-1
    if ctx.branch_i32(6, Cmp::Ge, ix, 0x4018_0000) {
        if ctx.branch_i32(7, Cmp::Ge, hx, 0) {
            let _ = 1.0 - TINY;
        } else {
            let _ = TINY - 1.0;
        }
        return;
    }
    // 1.25 <= |x| < 6
    let xa = x.abs();
    let s = 1.0 / (xa * xa);
    let big_r;
    // |x| < 1/0.35
    if ctx.branch_i32(8, Cmp::Lt, ix, 0x4006_db6e) {
        big_r = -9.864_944_034_847_148e-03 + s * -6.938_585_727_071_818e-01;
    } else {
        big_r = -9.864_942_924_700_099e-03 + s * -7.992_832_376_805_323e-01;
    }
    let z = f64::from_bits(xa.to_bits() & 0xffff_ffff_0000_0000);
    let r = (-z * z - 0.5625).exp() * ((z - xa) * (z + xa) + big_r).exp();
    if ctx.branch_i32(9, Cmp::Ge, hx, 0) {
        let _ = 1.0 - r / xa;
    } else {
        let _ = r / xa - 1.0;
    }
}

/// `s_erf.c` — erfc(x). 12 conditional sites.
pub fn erfc(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let ix = hx & 0x7fff_ffff;

    // erfc(NaN) = NaN, erfc(+inf) = 0, erfc(-inf) = 2
    if ctx.branch_i32(0, Cmp::Ge, ix, 0x7ff0_0000) {
        let i = ((hx as u32) >> 31) as i32;
        let _ = f64::from(i + i) + 1.0 / x;
        return;
    }
    // |x| < 0.84375
    if ctx.branch_i32(1, Cmp::Lt, ix, 0x3feb_0000) {
        // |x| < 2^-56
        if ctx.branch_i32(2, Cmp::Lt, ix, 0x3c70_0000) {
            let _ = 1.0 - x;
            return;
        }
        let z = x * x;
        let (r, s) = poly_small(z);
        let y = r / s;
        // x < 1/4
        if ctx.branch_i32(3, Cmp::Lt, hx, 0x3fd0_0000) {
            let _ = 1.0 - (x + x * y);
        } else {
            let r = x * y;
            let _ = 0.5 - (r + (x - 0.5));
        }
        return;
    }
    // |x| < 1.25
    if ctx.branch_i32(4, Cmp::Lt, ix, 0x3ff4_0000) {
        let s = x.abs() - 1.0;
        let p = -2.362_118_560_752_659e-03 + s * 4.148_561_186_837_483e-01;
        let q = 1.0 + s * 1.064_208_804_008_442e-01;
        if ctx.branch_i32(5, Cmp::Ge, hx, 0) {
            let _ = 1.0 - ERX - p / q;
        } else {
            let _ = 1.0 + ERX + p / q;
        }
        return;
    }
    // |x| < 28
    if ctx.branch_i32(6, Cmp::Lt, ix, 0x403c_0000) {
        let xa = x.abs();
        let s = 1.0 / (xa * xa);
        let big_r;
        // |x| < 1/0.35
        if ctx.branch_i32(7, Cmp::Lt, ix, 0x4006_db6e) {
            big_r = -9.864_944_034_847_148e-03 + s * -6.938_585_727_071_818e-01;
        } else {
            // x < -6: erfc saturates to 2
            if ctx.branch_i32(8, Cmp::Lt, hx, 0) && ctx.branch_i32(9, Cmp::Ge, ix, 0x4018_0000) {
                let _ = 2.0 - TINY;
                return;
            }
            big_r = -9.864_942_924_700_099e-03 + s * -7.992_832_376_805_323e-01;
        }
        let z = f64::from_bits(xa.to_bits() & 0xffff_ffff_0000_0000);
        let r = (-z * z - 0.5625).exp() * ((z - xa) * (z + xa) + big_r).exp();
        if ctx.branch_i32(10, Cmp::Gt, hx, 0) {
            let _ = r / xa;
        } else {
            let _ = 2.0 - r / xa;
        }
        return;
    }
    // |x| >= 28: underflow or 2
    if ctx.branch_i32(11, Cmp::Gt, hx, 0) {
        let _ = TINY * TINY;
    } else {
        let _ = 2.0 - TINY;
    }
}

/// Number of conditional sites of each port in this module.
pub mod sites {
    /// Sites in [`super::erf`].
    pub const ERF: usize = 10;
    /// Sites in [`super::erfc`].
    pub const ERFC: usize = 12;
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{BranchId, ExecCtx};

    fn run(f: fn(&[f64], &mut ExecCtx), x: f64) -> ExecCtx {
        let mut ctx = ExecCtx::observe();
        f(&[x], &mut ctx);
        ctx
    }

    #[test]
    fn site_ids_stay_within_declared_ranges() {
        let inputs = [
            0.0,
            1e-310,
            1e-30,
            0.3,
            0.5,
            0.9,
            1.1,
            -1.1,
            2.0,
            -2.0,
            4.0,
            -7.0,
            10.0,
            30.0,
            -30.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        for &x in &inputs {
            for e in run(erf, x).trace() {
                assert!((e.site as usize) < sites::ERF);
            }
            for e in run(erfc, x).trace() {
                assert!((e.site as usize) < sites::ERFC);
            }
        }
    }

    #[test]
    fn erf_interval_ladder() {
        assert!(run(erf, 1e-310).covered().contains(BranchId::true_of(3)));
        assert!(run(erf, 0.5).covered().contains(BranchId::false_of(2)));
        assert!(run(erf, 1.0).covered().contains(BranchId::true_of(4)));
        assert!(run(erf, 7.0).covered().contains(BranchId::true_of(6)));
        assert!(run(erf, 3.0).covered().contains(BranchId::false_of(6)));
    }

    #[test]
    fn erfc_tails() {
        assert!(run(erfc, 30.0).covered().contains(BranchId::true_of(11)));
        assert!(run(erfc, -30.0).covered().contains(BranchId::false_of(11)));
        assert!(run(erfc, -7.0).covered().contains(BranchId::true_of(9)));
    }
}
