//! Trigonometric functions and argument reduction: `sin`, `cos`, `tan`,
//! `__kernel_cos`, `atan`, `asin`, `acos`, `atan2`, `__ieee754_rem_pio2`.
//!
//! Ports of `s_sin.c`, `s_cos.c`, `s_tan.c`, `k_cos.c`, `s_atan.c`,
//! `e_asin.c`, `e_acos.c`, `e_atan2.c` and `e_rem_pio2.c`.

use coverme_runtime::{Cmp, ExecCtx};

use crate::bits::{high_word, low_word};

const HUGE: f64 = 1.0e300;
const PIO2_HI: f64 = 1.570_796_326_794_896_558e+00;
const PIO2_LO: f64 = 6.123_233_995_736_766_036e-17;
const PI: f64 = std::f64::consts::PI;
const PI_LO: f64 = 1.224_646_799_147_353_207e-16;

/// `s_sin.c` — sin(x). 4 conditional sites.
pub fn sin(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let ix = high_word(x) & 0x7fff_ffff;

    // |x| ~< pi/4
    if ctx.branch_i32(0, Cmp::Le, ix, 0x3fe9_21fb) {
        let _ = x - x * x * x / 6.0;
        return;
    }
    // sin(Inf or NaN) is NaN
    if ctx.branch_i32(1, Cmp::Ge, ix, 0x7ff0_0000) {
        let _ = x - x;
        return;
    }
    // argument reduction needed
    let n = reduce_quadrant(x);
    if ctx.branch_i32(2, Cmp::Le, n % 2, 0) {
        let _ = x.sin();
    } else if ctx.branch_i32(3, Cmp::Eq, n % 4, 1) {
        let _ = x.cos();
    } else {
        let _ = -x.cos();
    }
}

/// `s_cos.c` — cos(x). 4 conditional sites.
pub fn cos(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let ix = high_word(x) & 0x7fff_ffff;

    if ctx.branch_i32(0, Cmp::Le, ix, 0x3fe9_21fb) {
        let _ = 1.0 - 0.5 * x * x;
        return;
    }
    if ctx.branch_i32(1, Cmp::Ge, ix, 0x7ff0_0000) {
        let _ = x - x;
        return;
    }
    let n = reduce_quadrant(x);
    if ctx.branch_i32(2, Cmp::Eq, n % 4, 0) {
        let _ = x.cos();
    } else if ctx.branch_i32(3, Cmp::Le, n % 4, 2) {
        let _ = -x.cos();
    } else {
        let _ = x.sin();
    }
}

/// `s_tan.c` — tan(x). 2 conditional sites.
pub fn tan(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let ix = high_word(x) & 0x7fff_ffff;

    if ctx.branch_i32(0, Cmp::Le, ix, 0x3fe9_21fb) {
        let _ = x + x * x * x / 3.0;
        return;
    }
    if ctx.branch_i32(1, Cmp::Ge, ix, 0x7ff0_0000) {
        let _ = x - x;
        return;
    }
    let _ = x.tan();
}

/// `k_cos.c` — the cosine kernel `__kernel_cos(x, y)`. 4 conditional sites.
///
/// The `if (((int) x) == 0)` branch nested inside `|x| < 2^-27` is the
/// paper's Sect. D example of a genuinely unreachable branch (the outer
/// guard forces the cast to 0), kept verbatim here.
pub fn kernel_cos(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let y = input[1];
    let ix = high_word(x) & 0x7fff_ffff;

    // |x| < 2**-27
    if ctx.branch_i32(0, Cmp::Lt, ix, 0x3e40_0000) {
        // generate inexact; always true given the outer guard
        if ctx.branch_i32(1, Cmp::Eq, x as i32, 0) {
            let _ = 1.0;
            return;
        }
    }
    let z = x * x;
    let r = z * (0.04166666666666666 + z * (-0.001388888888887411 + z * 2.48015872894767294e-05));
    // |x| < 0.3
    if ctx.branch_i32(2, Cmp::Lt, ix, 0x3fd3_3333) {
        let _ = 1.0 - (0.5 * z - (z * r - x * y));
        return;
    }
    // |x| > 0.78125
    let qx = if ctx.branch_i32(3, Cmp::Gt, ix, 0x3fe9_0000) {
        0.28125
    } else {
        f64::from_bits(((ix as u64 - 0x0020_0000) << 32) | 0)
    };
    let hz = 0.5 * z - qx;
    let a = 1.0 - qx;
    let _ = a - (hz - (z * r - x * y));
}

/// `s_atan.c` — atan(x). 13 conditional sites.
pub fn atan(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let ix = hx & 0x7fff_ffff;

    // |x| >= 2^66
    if ctx.branch_i32(0, Cmp::Ge, ix, 0x4410_0000) {
        if ctx.branch_i32(1, Cmp::Gt, ix, 0x7ff0_0000) {
            let _ = x + x; // NaN
            return;
        }
        if ctx.branch_i32(2, Cmp::Gt, hx, 0) {
            let _ = PIO2_HI + PIO2_LO;
        } else {
            let _ = -PIO2_HI - PIO2_LO;
        }
        return;
    }

    let id: i32;
    let mut xa = x.abs();
    // |x| < 0.4375
    if ctx.branch_i32(3, Cmp::Lt, ix, 0x3fdc_0000) {
        // |x| < 2^-29
        if ctx.branch_i32(4, Cmp::Lt, ix, 0x3e20_0000) {
            if ctx.branch(5, Cmp::Gt, HUGE + x, 1.0) {
                let _ = x;
                return;
            }
        }
        id = -1;
    } else if ctx.branch_i32(6, Cmp::Lt, ix, 0x3ff3_0000) {
        // |x| < 1.1875: further split at 11/16
        if ctx.branch_i32(7, Cmp::Lt, ix, 0x3fe6_0000) {
            id = 0;
            xa = (2.0 * xa - 1.0) / (2.0 + xa);
        } else {
            id = 1;
            xa = (xa - 1.0) / (xa + 1.0);
        }
    } else if ctx.branch_i32(8, Cmp::Lt, ix, 0x4003_8000) {
        // |x| < 2.4375
        id = 2;
        xa = (xa - 1.5) / (1.0 + 1.5 * xa);
    } else {
        // 2.4375 <= |x| < 2^66
        id = 3;
        xa = -1.0 / xa;
    }

    let z = xa * xa;
    let w = z * z;
    let s1 = z * (0.333333333333329318 + w * (0.142857142725034663 + w * 0.0909088713343650656));
    let s2 = w * (-0.199999999998764832 + w * -0.111111104054623557);
    // id < 0: no table offset
    if ctx.branch_i32(9, Cmp::Lt, id, 0) {
        let _ = xa - xa * (s1 + s2);
        return;
    }
    let table = [
        4.63647609000806094e-01,
        7.85398163397448279e-01,
        9.82793723247329054e-01,
        1.57079632679489656e+00,
    ];
    let z = table[id as usize] - ((xa * (s1 + s2) - PIO2_LO) - xa);
    // sign selection ladder preserved from the C source
    if ctx.branch_i32(10, Cmp::Lt, hx, 0) {
        let _ = -z;
    } else if ctx.branch_i32(11, Cmp::Eq, id, 3) {
        let _ = z;
    } else if ctx.branch_i32(12, Cmp::Ge, id, 0) {
        let _ = z;
    }
}

/// `e_asin.c` — asin(x). 7 conditional sites.
pub fn asin(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let ix = hx & 0x7fff_ffff;

    // |x| >= 1
    if ctx.branch_i32(0, Cmp::Ge, ix, 0x3ff0_0000) {
        let lx = low_word(x);
        // |x| == 1 exactly
        if ctx.branch(1, Cmp::Eq, ((ix - 0x3ff0_0000) | lx as i32) as f64, 0.0) {
            let _ = x * PIO2_HI + x * PIO2_LO;
            return;
        }
        // |x| > 1: NaN
        let _ = (x - x) / (x - x);
        return;
    }
    // |x| < 0.5
    if ctx.branch_i32(2, Cmp::Lt, ix, 0x3fe0_0000) {
        // |x| < 2^-27
        if ctx.branch_i32(3, Cmp::Lt, ix, 0x3e40_0000) {
            if ctx.branch(4, Cmp::Gt, HUGE + x, 1.0) {
                let _ = x;
                return;
            }
        }
        let t = x * x;
        let p = t * (0.1666666666666666 + t * 0.075);
        let _ = x + x * p;
        return;
    }
    // 1 > |x| >= 0.5
    let w = 1.0 - x.abs();
    let t = w * 0.5;
    let s = t.sqrt();
    // |x| >= 0.975
    if ctx.branch_i32(5, Cmp::Ge, ix, 0x3fef_3333) {
        let _ = PIO2_HI - (2.0 * (s + s * t) - PIO2_LO);
    } else {
        let _ = PIO2_HI - (2.0 * (s + s * t));
    }
    let _ = ctx.branch_i32(6, Cmp::Gt, hx, 0); // final sign split
}

/// `e_acos.c` — acos(x). 6 conditional sites.
pub fn acos(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let ix = hx & 0x7fff_ffff;

    // |x| >= 1
    if ctx.branch_i32(0, Cmp::Ge, ix, 0x3ff0_0000) {
        let lx = low_word(x);
        if ctx.branch(1, Cmp::Eq, ((ix - 0x3ff0_0000) | lx as i32) as f64, 0.0) {
            // |x| == 1
            if ctx.branch_i32(2, Cmp::Gt, hx, 0) {
                let _ = 0.0; // acos(1) = 0
            } else {
                let _ = PI + 2.0 * PIO2_LO; // acos(-1) = pi
            }
            return;
        }
        let _ = (x - x) / (x - x); // NaN
        return;
    }
    // |x| < 0.5
    if ctx.branch_i32(3, Cmp::Lt, ix, 0x3fe0_0000) {
        // |x| <= 2^-57
        if ctx.branch_i32(4, Cmp::Le, ix, 0x3c60_0000) {
            let _ = PIO2_HI + PIO2_LO;
            return;
        }
        let z = x * x;
        let p = z * (0.1666666666666666 + z * 0.075);
        let _ = PIO2_HI - (x - (PIO2_LO - x * p));
        return;
    }
    // x < -0.5
    if ctx.branch_i32(5, Cmp::Lt, hx, 0) {
        let z = (1.0 + x) * 0.5;
        let s = z.sqrt();
        let _ = PI - 2.0 * (s + s * z * 0.16);
        return;
    }
    // x > 0.5
    let z = (1.0 - x) * 0.5;
    let s = z.sqrt();
    let _ = 2.0 * (s + s * z * 0.16);
}

/// `e_atan2.c` — atan2(y, x). 12 conditional sites.
pub fn atan2(input: &[f64], ctx: &mut ExecCtx) {
    let y = input[0];
    let x = input[1];
    let hx = high_word(x);
    let lx = low_word(x);
    let hy = high_word(y);
    let ly = low_word(y);
    let ix = hx & 0x7fff_ffff;
    let iy = hy & 0x7fff_ffff;

    // x is NaN
    if ctx.branch(
        0,
        Cmp::Gt,
        ix as f64 + if lx != 0 { 0.5 } else { 0.0 },
        0x7ff0_0000 as f64,
    ) {
        let _ = x + y;
        return;
    }
    // y is NaN
    if ctx.branch(
        1,
        Cmp::Gt,
        iy as f64 + if ly != 0 { 0.5 } else { 0.0 },
        0x7ff0_0000 as f64,
    ) {
        let _ = x + y;
        return;
    }
    let m = ((hy >> 31) & 1) | ((hx >> 30) & 2);

    // x == 1.0: atan2(y, 1) = atan(y). The callee keeps its own Gcov site
    // list in the paper's counts, so its branches are not re-reported here.
    if ctx.branch(
        2,
        Cmp::Eq,
        (hx.wrapping_sub(0x3ff0_0000) | lx as i32) as f64,
        0.0,
    ) {
        let mut inner = ExecCtx::observe().without_trace();
        atan(&[y], &mut inner);
        return;
    }

    // y == 0
    if ctx.branch(3, Cmp::Eq, (iy | ly as i32) as f64, 0.0) {
        if ctx.branch_i32(4, Cmp::Le, m, 1) {
            let _ = y; // atan(+-0, +anything) = +-0
        } else {
            let _ = PI; // atan(+-0, -anything) = +-pi
        }
        return;
    }
    // x == 0
    if ctx.branch(5, Cmp::Eq, (ix | lx as i32) as f64, 0.0) {
        let _ = if hy < 0 { -PIO2_HI } else { PIO2_HI };
        return;
    }
    // x == INF
    if ctx.branch_i32(6, Cmp::Eq, ix, 0x7ff0_0000) {
        if ctx.branch_i32(7, Cmp::Eq, iy, 0x7ff0_0000) {
            let _ = match m {
                0 => PI / 4.0,
                1 => -PI / 4.0,
                2 => 3.0 * PI / 4.0,
                _ => -3.0 * PI / 4.0,
            };
        } else {
            let _ = match m {
                0 => 0.0,
                1 => -0.0,
                2 => PI,
                _ => -PI,
            };
        }
        return;
    }
    // y is INF (x finite)
    if ctx.branch_i32(8, Cmp::Eq, iy, 0x7ff0_0000) {
        let _ = if hy < 0 { -PIO2_HI } else { PIO2_HI };
        return;
    }

    // general case: compute y/x and dispatch on the quadrant
    let k = (iy - ix) >> 20;
    let z = if ctx.branch_i32(9, Cmp::Gt, k, 60) {
        PIO2_HI + 0.5 * PI_LO
    } else if ctx.branch_i32(10, Cmp::Lt, hx, 0) && ctx.branch_i32(11, Cmp::Lt, k, -60) {
        0.0
    } else {
        (y / x).abs().atan()
    };
    let _ = match m {
        0 => z,
        1 => -z,
        2 => PI - (z - PI_LO),
        _ => (z - PI_LO) - PI,
    };
}

/// `e_rem_pio2.c` — argument reduction `__ieee754_rem_pio2(x, &y)`.
/// 15 conditional sites. The `double*` output parameter of the C original
/// is an output only, so the testable input is just `x` (Sect. 5.3 of the
/// paper handles such pointers the same way).
pub fn rem_pio2(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let ix = hx & 0x7fff_ffff;
    const INVPIO2: f64 = 6.366_197_723_675_813_82e-01;
    const PIO2_1: f64 = 1.570_796_326_734_125_61e+00;
    const PIO2_1T: f64 = 6.077_100_506_506_192_60e-11;
    const PIO2_2T: f64 = 2.022_266_248_795_950_73e-21;

    // |x| ~<= pi/4: no reduction needed
    if ctx.branch_i32(0, Cmp::Le, ix, 0x3fe9_21fb) {
        let _ = x;
        return;
    }
    // |x| < 3pi/4: special case with n = +-1
    if ctx.branch_i32(1, Cmp::Lt, ix, 0x4002_d97c) {
        if ctx.branch_i32(2, Cmp::Gt, hx, 0) {
            let z = x - PIO2_1;
            // 33+53 bit pi is good enough for this case
            if ctx.branch_i32(3, Cmp::Ne, ix, 0x3ff9_21fb) {
                let _ = z - PIO2_1T;
            } else {
                let _ = z - PIO2_1T - PIO2_2T;
            }
        } else {
            let z = x + PIO2_1;
            if ctx.branch_i32(4, Cmp::Ne, ix, 0x3ff9_21fb) {
                let _ = z + PIO2_1T;
            } else {
                let _ = z + PIO2_1T + PIO2_2T;
            }
        }
        return;
    }
    // |x| <= 2^19 * pi/2: medium-size argument
    if ctx.branch_i32(5, Cmp::Le, ix, 0x4139_21fb) {
        let t = x.abs();
        let n = (t * INVPIO2 + 0.5) as i32;
        let f64_n = f64::from(n);
        let mut r = t - f64_n * PIO2_1;
        let mut w = f64_n * PIO2_1T;
        // 1st round good to 85 bit?
        if ctx.branch_i32(6, Cmp::Ne, n, 32)
            && ctx.branch_i32(
                7,
                Cmp::Lt,
                (ix >> 20) - (high_word(r - w) >> 20 & 0x7ff),
                16,
            )
        {
            let _ = r - w;
        } else {
            // 2nd iteration needed
            let t2 = r;
            w = f64_n * PIO2_1T;
            r = t2 - w;
            if ctx.branch_i32(8, Cmp::Gt, (ix >> 20) - (high_word(r) >> 20 & 0x7ff), 49) {
                // 3rd iteration
                let _ = r - f64_n * PIO2_2T;
            } else {
                let _ = r;
            }
        }
        let _ = ctx.branch_i32(9, Cmp::Lt, hx, 0); // negate for negative x
        return;
    }
    // x is inf or NaN
    if ctx.branch_i32(10, Cmp::Ge, ix, 0x7ff0_0000) {
        let _ = x - x;
        return;
    }
    // huge argument: payne-hanek style reduction (simplified): split into
    // exponent chunks and loop, preserving the branch ladder.
    let e0 = (ix >> 20) - 1046;
    let mut z = f64::from_bits((((ix - (e0 << 20)) as u64) << 32) | low_word(x) as u64);
    let mut tx = [0.0f64; 3];
    let mut i = 0usize;
    while ctx.branch_i32(11, Cmp::Lt, i as i32, 2) {
        tx[i] = z.floor();
        z = (z - tx[i]) * 1.6777216e7;
        i += 1;
    }
    tx[2] = z;
    let mut nx = 3usize;
    while ctx.branch(12, Cmp::Eq, tx[nx - 1], 0.0) {
        nx -= 1;
        if ctx.branch_i32(13, Cmp::Eq, nx as i32, 0) {
            break;
        }
    }
    let _ = ctx.branch_i32(14, Cmp::Lt, hx, 0);
}

/// Helper: quadrant index used by the `sin`/`cos` reductions above. The
/// original calls `__ieee754_rem_pio2`; the quadrant is what the dispatch
/// ladder branches on.
fn reduce_quadrant(x: f64) -> i32 {
    let n = (x.abs() * std::f64::consts::FRAC_2_PI + 0.5).floor();
    (n as i64 & 3) as i32
}

/// Number of conditional sites of each port in this module.
pub mod sites {
    /// Sites in [`super::sin`].
    pub const SIN: usize = 4;
    /// Sites in [`super::cos`].
    pub const COS: usize = 4;
    /// Sites in [`super::tan`].
    pub const TAN: usize = 2;
    /// Sites in [`super::kernel_cos`].
    pub const KERNEL_COS: usize = 4;
    /// Sites in [`super::atan`].
    pub const ATAN: usize = 13;
    /// Sites in [`super::asin`].
    pub const ASIN: usize = 7;
    /// Sites in [`super::acos`].
    pub const ACOS: usize = 6;
    /// Sites in [`super::atan2`].
    pub const ATAN2: usize = 12;
    /// Sites in [`super::rem_pio2`].
    pub const REM_PIO2: usize = 15;
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{BranchId, ExecCtx};

    fn run1(f: fn(&[f64], &mut ExecCtx), x: f64) -> ExecCtx {
        let mut ctx = ExecCtx::observe();
        f(&[x], &mut ctx);
        ctx
    }

    fn run2(f: fn(&[f64], &mut ExecCtx), x: f64, y: f64) -> ExecCtx {
        let mut ctx = ExecCtx::observe();
        f(&[x, y], &mut ctx);
        ctx
    }

    #[test]
    fn site_ids_stay_within_declared_ranges() {
        let unary: crate::SiteCases = &[
            (sin, sites::SIN),
            (cos, sites::COS),
            (tan, sites::TAN),
            (atan, sites::ATAN),
            (asin, sites::ASIN),
            (acos, sites::ACOS),
            (rem_pio2, sites::REM_PIO2),
        ];
        let inputs = [
            0.0,
            0.5,
            -0.5,
            0.99,
            1.0,
            -1.0,
            1.5,
            3.0,
            -3.0,
            100.0,
            1e10,
            1e300,
            1e-300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            0.4,
            2.4,
            65.0,
        ];
        for &(f, declared) in unary {
            for &x in &inputs {
                let ctx = run1(f, x);
                for event in ctx.trace() {
                    assert!(
                        (event.site as usize) < declared,
                        "site {} >= {declared}",
                        event.site
                    );
                }
            }
        }
        for &x in &inputs {
            for &y in &inputs {
                let ctx = run2(atan2, x, y);
                for event in ctx.trace() {
                    assert!((event.site as usize) < sites::ATAN2);
                }
                let ctx = run2(kernel_cos, x, y);
                for event in ctx.trace() {
                    assert!((event.site as usize) < sites::KERNEL_COS);
                }
            }
        }
    }

    #[test]
    fn kernel_cos_inner_branch_is_one_sided() {
        // The paper's Sect. D: `((int) x) == 0` can only be true under the
        // |x| < 2^-27 guard, so its false side is infeasible.
        let ctx = run2(kernel_cos, 1e-9, 0.0);
        assert!(ctx.covered().contains(BranchId::true_of(0)));
        assert!(ctx.covered().contains(BranchId::true_of(1)));
        let ctx = run2(kernel_cos, 0.2, 0.0);
        assert!(ctx.covered().contains(BranchId::false_of(0)));
    }

    #[test]
    fn asin_domain_cases() {
        assert!(run1(asin, 1.0).covered().contains(BranchId::true_of(1)));
        assert!(run1(asin, 2.0).covered().contains(BranchId::false_of(1)));
        assert!(run1(asin, 0.25).covered().contains(BranchId::true_of(2)));
        assert!(run1(asin, 0.75).covered().contains(BranchId::false_of(2)));
    }

    #[test]
    fn atan2_special_cases() {
        // x == 1 fast path
        assert!(run2(atan2, 0.3, 1.0)
            .covered()
            .contains(BranchId::true_of(2)));
        // y == 0
        assert!(run2(atan2, 0.0, 2.0)
            .covered()
            .contains(BranchId::true_of(3)));
        // x == 0
        assert!(run2(atan2, 1.0, 0.0)
            .covered()
            .contains(BranchId::true_of(5)));
        // x infinite
        assert!(run2(atan2, 1.0, f64::INFINITY)
            .covered()
            .contains(BranchId::true_of(6)));
    }

    #[test]
    fn rem_pio2_covers_small_medium_and_special() {
        assert!(run1(rem_pio2, 0.5).covered().contains(BranchId::true_of(0)));
        assert!(run1(rem_pio2, 2.0).covered().contains(BranchId::true_of(1)));
        assert!(run1(rem_pio2, 100.0)
            .covered()
            .contains(BranchId::true_of(5)));
        assert!(run1(rem_pio2, f64::NAN)
            .covered()
            .contains(BranchId::true_of(10)));
        assert!(run1(rem_pio2, 1e300)
            .covered()
            .contains(BranchId::false_of(10)));
    }
}
