//! The benchmark suite registry: the 40 Fdlibm entry functions of the
//! paper's Tables 2, 3 and 5, each exposed as a [`Benchmark`] implementing
//! [`coverme_runtime::Program`].

use coverme_runtime::{ExecCtx, Program};

use crate::{bessel, erf, exp_log, hyper, power, rounding, trig};

/// One benchmark function of the suite.
#[derive(Clone, Copy)]
pub struct Benchmark {
    /// Fdlibm source file the port corresponds to.
    pub file: &'static str,
    /// Entry function name as the paper's tables print it.
    pub name: &'static str,
    /// Number of `f64` inputs.
    pub arity: usize,
    /// Number of instrumented conditional sites in the port.
    pub sites: usize,
    /// Number of branches the paper's Table 2 reports for the original C
    /// function (Gcov counting). Useful as table metadata; the port's own
    /// branch count is `2 * sites`.
    pub paper_branches: usize,
    /// Number of source lines the paper's Table 5 reports.
    pub paper_lines: usize,
    /// The instrumented port.
    pub func: fn(&[f64], &mut ExecCtx),
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("file", &self.file)
            .field("name", &self.name)
            .field("arity", &self.arity)
            .field("sites", &self.sites)
            .finish_non_exhaustive()
    }
}

impl Program for Benchmark {
    fn name(&self) -> &str {
        self.name
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn num_sites(&self) -> usize {
        self.sites
    }

    fn execute(&self, input: &[f64], ctx: &mut ExecCtx) {
        assert_eq!(
            input.len(),
            self.arity,
            "benchmark {} expects {} inputs, got {}",
            self.name,
            self.arity,
            input.len()
        );
        (self.func)(input, ctx);
    }

    fn source_lines(&self) -> usize {
        self.paper_lines
    }
}

macro_rules! benchmark {
    ($file:literal, $name:literal, $arity:expr, $sites:expr, $paper_branches:expr, $paper_lines:expr, $func:path) => {
        Benchmark {
            file: $file,
            name: $name,
            arity: $arity,
            sites: $sites,
            paper_branches: $paper_branches,
            paper_lines: $paper_lines,
            func: $func,
        }
    };
}

/// The 40 benchmark functions, in the order of the paper's Table 2.
pub const BENCHMARKS: &[Benchmark] = &[
    benchmark!(
        "e_acos.c",
        "ieee754_acos",
        1,
        trig::sites::ACOS,
        12,
        33,
        trig::acos
    ),
    benchmark!(
        "e_acosh.c",
        "ieee754_acosh",
        1,
        hyper::sites::ACOSH,
        10,
        15,
        hyper::acosh
    ),
    benchmark!(
        "e_asin.c",
        "ieee754_asin",
        1,
        trig::sites::ASIN,
        14,
        31,
        trig::asin
    ),
    benchmark!(
        "e_atan2.c",
        "ieee754_atan2",
        2,
        trig::sites::ATAN2,
        44,
        39,
        trig::atan2
    ),
    benchmark!(
        "e_atanh.c",
        "ieee754_atanh",
        1,
        hyper::sites::ATANH,
        12,
        15,
        hyper::atanh
    ),
    benchmark!(
        "e_cosh.c",
        "ieee754_cosh",
        1,
        hyper::sites::COSH,
        16,
        20,
        hyper::cosh
    ),
    benchmark!(
        "e_exp.c",
        "ieee754_exp",
        1,
        exp_log::sites::EXP,
        24,
        31,
        exp_log::exp
    ),
    benchmark!(
        "e_fmod.c",
        "ieee754_fmod",
        2,
        rounding::sites::FMOD,
        60,
        70,
        rounding::fmod
    ),
    benchmark!(
        "e_hypot.c",
        "ieee754_hypot",
        2,
        power::sites::HYPOT,
        22,
        50,
        power::hypot
    ),
    benchmark!(
        "e_j0.c",
        "ieee754_j0",
        1,
        bessel::sites::J0,
        18,
        29,
        bessel::j0
    ),
    benchmark!(
        "e_j0.c",
        "ieee754_y0",
        1,
        bessel::sites::Y0,
        16,
        26,
        bessel::y0
    ),
    benchmark!(
        "e_j1.c",
        "ieee754_j1",
        1,
        bessel::sites::J1,
        16,
        26,
        bessel::j1
    ),
    benchmark!(
        "e_j1.c",
        "ieee754_y1",
        1,
        bessel::sites::Y1,
        16,
        26,
        bessel::y1
    ),
    benchmark!(
        "e_log.c",
        "ieee754_log",
        1,
        exp_log::sites::LOG,
        22,
        39,
        exp_log::log
    ),
    benchmark!(
        "e_log10.c",
        "ieee754_log10",
        1,
        exp_log::sites::LOG10,
        8,
        18,
        exp_log::log10
    ),
    benchmark!(
        "e_pow.c",
        "ieee754_pow",
        2,
        power::sites::POW,
        114,
        139,
        power::pow
    ),
    benchmark!(
        "e_rem_pio2.c",
        "ieee754_rem_pio2",
        1,
        trig::sites::REM_PIO2,
        30,
        64,
        trig::rem_pio2
    ),
    benchmark!(
        "e_remainder.c",
        "ieee754_remainder",
        2,
        rounding::sites::REMAINDER,
        22,
        27,
        rounding::remainder
    ),
    benchmark!(
        "e_scalb.c",
        "ieee754_scalb",
        2,
        power::sites::SCALB,
        14,
        9,
        power::scalb
    ),
    benchmark!(
        "e_sinh.c",
        "ieee754_sinh",
        1,
        hyper::sites::SINH,
        20,
        19,
        hyper::sinh
    ),
    benchmark!(
        "e_sqrt.c",
        "ieee754_sqrt",
        1,
        power::sites::SQRT,
        46,
        68,
        power::sqrt
    ),
    benchmark!(
        "k_cos.c",
        "kernel_cos",
        2,
        trig::sites::KERNEL_COS,
        8,
        15,
        trig::kernel_cos
    ),
    benchmark!(
        "s_asinh.c",
        "asinh",
        1,
        hyper::sites::ASINH,
        12,
        14,
        hyper::asinh
    ),
    benchmark!("s_atan.c", "atan", 1, trig::sites::ATAN, 26, 28, trig::atan),
    benchmark!(
        "s_cbrt.c",
        "cbrt",
        1,
        power::sites::CBRT,
        6,
        24,
        power::cbrt
    ),
    benchmark!(
        "s_ceil.c",
        "ceil",
        1,
        rounding::sites::CEIL,
        30,
        29,
        rounding::ceil
    ),
    benchmark!("s_cos.c", "cos", 1, trig::sites::COS, 8, 12, trig::cos),
    benchmark!("s_erf.c", "erf", 1, erf::sites::ERF, 20, 38, erf::erf),
    benchmark!("s_erf.c", "erfc", 1, erf::sites::ERFC, 24, 43, erf::erfc),
    benchmark!(
        "s_expm1.c",
        "expm1",
        1,
        exp_log::sites::EXPM1,
        42,
        56,
        exp_log::expm1
    ),
    benchmark!(
        "s_floor.c",
        "floor",
        1,
        rounding::sites::FLOOR,
        30,
        30,
        rounding::floor
    ),
    benchmark!(
        "s_ilogb.c",
        "ilogb",
        1,
        rounding::sites::ILOGB,
        12,
        12,
        rounding::ilogb
    ),
    benchmark!(
        "s_log1p.c",
        "log1p",
        1,
        exp_log::sites::LOG1P,
        36,
        46,
        exp_log::log1p
    ),
    benchmark!(
        "s_logb.c",
        "logb",
        1,
        rounding::sites::LOGB,
        6,
        8,
        rounding::logb
    ),
    benchmark!(
        "s_modf.c",
        "modf",
        1,
        rounding::sites::MODF,
        10,
        32,
        rounding::modf
    ),
    benchmark!(
        "s_nextafter.c",
        "nextafter",
        2,
        rounding::sites::NEXTAFTER,
        44,
        36,
        rounding::nextafter
    ),
    benchmark!(
        "s_rint.c",
        "rint",
        1,
        rounding::sites::RINT,
        20,
        34,
        rounding::rint
    ),
    benchmark!("s_sin.c", "sin", 1, trig::sites::SIN, 8, 12, trig::sin),
    benchmark!("s_tan.c", "tan", 1, trig::sites::TAN, 4, 8, trig::tan),
    benchmark!(
        "s_tanh.c",
        "tanh",
        1,
        hyper::sites::TANH,
        12,
        16,
        hyper::tanh
    ),
];

/// Returns the full benchmark suite in table order.
pub fn all() -> Vec<Benchmark> {
    BENCHMARKS.to_vec()
}

/// Looks up a benchmark by its (case-sensitive) name. Both the full name
/// (`"ieee754_tanh"` style, as registered) and the short suffix (`"tanh"`)
/// are accepted.
pub fn by_name(name: &str) -> Option<Benchmark> {
    BENCHMARKS
        .iter()
        .find(|b| b.name == name || b.name.strip_prefix("ieee754_") == Some(name))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_optim::rng::SplitMix64;
    use coverme_runtime::CoverageMap;

    #[test]
    fn suite_has_exactly_forty_benchmarks() {
        assert_eq!(BENCHMARKS.len(), 40);
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for b in BENCHMARKS {
            assert!(seen.insert(b.name), "duplicate benchmark name {}", b.name);
        }
    }

    #[test]
    fn lookup_accepts_short_and_full_names() {
        assert!(by_name("tanh").is_some());
        assert!(by_name("ieee754_pow").is_some());
        assert!(by_name("pow").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn every_benchmark_executes_on_representative_inputs() {
        let specials = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            -0.5,
            2.5,
            -2.5,
            1e300,
            -1e300,
            1e-320,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        for b in BENCHMARKS {
            let mut coverage = CoverageMap::new(b.sites);
            for &x in &specials {
                let input: Vec<f64> = std::iter::repeat_n(x, b.arity).collect();
                let mut ctx = ExecCtx::observe();
                b.execute(&input, &mut ctx);
                for event in ctx.trace() {
                    assert!(
                        (event.site as usize) < b.sites,
                        "{}: site {} out of declared range {}",
                        b.name,
                        event.site,
                        b.sites
                    );
                }
                coverage.record(&ctx);
            }
            assert!(
                coverage.covered_count() > 0,
                "{}: no branch executed at all",
                b.name
            );
        }
    }

    #[test]
    fn random_bit_patterns_do_not_panic_or_escape_site_ranges() {
        let mut rng = SplitMix64::new(0xFD11B);
        for b in BENCHMARKS {
            for _ in 0..200 {
                let input: Vec<f64> = (0..b.arity)
                    .map(|_| {
                        let v = f64::from_bits(rng.next_u64());
                        if v.is_finite() {
                            v
                        } else {
                            v
                        }
                    })
                    .collect();
                let mut ctx = ExecCtx::observe();
                b.execute(&input, &mut ctx);
                for event in ctx.trace() {
                    assert!(
                        (event.site as usize) < b.sites,
                        "{} site {}",
                        b.name,
                        event.site
                    );
                }
            }
        }
    }

    #[test]
    fn benchmark_metadata_is_sane() {
        for b in BENCHMARKS {
            assert!(b.arity == 1 || b.arity == 2, "{}", b.name);
            assert!(b.sites > 0, "{}", b.name);
            assert!(b.paper_branches >= 4, "{}", b.name);
            assert!(b.paper_lines >= 8, "{}", b.name);
            assert!(!format!("{b:?}").is_empty());
        }
    }
}
