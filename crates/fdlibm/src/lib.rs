//! Rust ports of the Fdlibm 5.3 benchmark functions used in the CoverMe
//! evaluation (Fu & Su, PLDI 2017, Tables 2, 3 and 5).
//!
//! Sun's Freely Distributable Math Library is the paper's benchmark suite:
//! 40 entry functions with floating-point inputs and at least one branch.
//! Each port here preserves the **branch structure** of the original C
//! source — the conditional guards on high/low words of the IEEE-754
//! representation, the special-case ladders for NaN/Inf/zero/subnormal
//! inputs, and the argument-reduction case splits — because that structure
//! is what makes the functions hard coverage targets. The polynomial
//! kernels inside unconditional straight-line regions are simplified where
//! exact coefficients do not influence control flow; `DESIGN.md` documents
//! this substitution.
//!
//! Every conditional is reported through
//! [`coverme_runtime::ExecCtx::branch`] (or the integer-promotion helpers),
//! which is the hand-instrumented equivalent of the paper's LLVM pass
//! injecting `r = pen(i, op, a, b)` before each conditional.
//!
//! The [`suite`] module exposes the 40 benchmark functions as
//! [`Benchmark`] values implementing [`coverme_runtime::Program`]; the
//! [`inventory`] module lists the Fdlibm functions the paper excludes and
//! why (Table 4).
//!
//! # Example
//!
//! ```
//! use coverme_fdlibm::suite;
//! use coverme_runtime::{ExecCtx, Program};
//!
//! let tanh = suite::by_name("tanh").expect("part of the benchmark suite");
//! let mut ctx = ExecCtx::observe();
//! tanh.execute(&[0.25], &mut ctx);
//! assert!(!ctx.trace().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The ports deliberately keep Fdlibm's C idioms so the branch structure
// matches the paper's benchmark: `x - x` / `x / x` to materialize NaN and
// Inf from special operands, 0.0/0.0, spelled-out polynomial coefficients,
// and the original (uncollapsed) special-case ladders.
#![allow(
    clippy::approx_constant,
    clippy::collapsible_if,
    clippy::eq_op,
    clippy::excessive_precision,
    clippy::identity_op,
    clippy::if_same_then_else,
    clippy::needless_late_init,
    clippy::zero_divided_by_zero
)]

pub mod bessel;
pub mod bits;
pub mod erf;
pub mod exp_log;
pub mod hyper;
pub mod inventory;
pub mod power;
pub mod rounding;
pub mod suite;
pub mod trig;

pub use inventory::{ExcludedFunction, ExclusionReason};
pub use suite::{all, by_name, Benchmark};

/// `(instrumented function, declared site count)` rows used by the per-module
/// smoke tests that check site ids stay within each function's declared range.
#[cfg(test)]
pub(crate) type SiteCases<'a> = &'a [(fn(&[f64], &mut coverme_runtime::ExecCtx), usize)];
