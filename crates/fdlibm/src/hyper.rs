//! Hyperbolic functions: `sinh`, `cosh`, `tanh`, `asinh`, `acosh`, `atanh`.
//!
//! Ports of `e_sinh.c`, `e_cosh.c`, `s_tanh.c`, `s_asinh.c`, `e_acosh.c`
//! and `e_atanh.c`. The guard ladders on the high word of the argument are
//! preserved from the C sources; see the crate docs for the fidelity notes.

use coverme_runtime::{Cmp, ExecCtx};

use crate::bits::{high_word, low_word};

const HUGE: f64 = 1.0e300;
const TINY: f64 = 1.0e-300;
const LN2: f64 = std::f64::consts::LN_2;

/// `s_tanh.c` — tanh(x). 6 conditional sites.
pub fn tanh(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let jx = high_word(x);
    let ix = jx & 0x7fff_ffff;

    // x is INF or NaN
    if ctx.branch_i32(0, Cmp::Ge, ix, 0x7ff0_0000) {
        if ctx.branch_i32(1, Cmp::Ge, jx, 0) {
            let _ = 1.0 / x + 1.0; // tanh(+-inf)=+-1, tanh(NaN)=NaN
        } else {
            let _ = 1.0 / x - 1.0;
        }
        return;
    }

    // |x| < 22
    let z;
    if ctx.branch_i32(2, Cmp::Lt, ix, 0x4036_0000) {
        // |x| < 2**-55: tanh(tiny) = tiny with inexact
        if ctx.branch_i32(3, Cmp::Lt, ix, 0x3c80_0000) {
            let _ = x * (1.0 + x);
            return;
        }
        if ctx.branch_i32(4, Cmp::Ge, ix, 0x3ff0_0000) {
            // |x| >= 1
            let t = (2.0 * x.abs()).exp_m1();
            z = 1.0 - 2.0 / (t + 2.0);
        } else {
            let t = (-2.0 * x.abs()).exp_m1();
            z = -t / (t + 2.0);
        }
    } else {
        // |x| > 22: tanh(x) = +-1 with inexact
        z = 1.0 - TINY;
    }
    let _ = if jx >= 0 { z } else { -z };
}

/// `e_sinh.c` — sinh(x). 10 conditional sites.
pub fn sinh(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let jx = high_word(x);
    let ix = jx & 0x7fff_ffff;

    // x is INF or NaN
    if ctx.branch_i32(0, Cmp::Ge, ix, 0x7ff0_0000) {
        let _ = x + x;
        return;
    }

    let h = if jx < 0 { -0.5 } else { 0.5 };
    // |x| in [0, 22]
    if ctx.branch_i32(1, Cmp::Lt, ix, 0x4036_0000) {
        // |x| < 2**-28
        if ctx.branch_i32(2, Cmp::Lt, ix, 0x3e30_0000) {
            if ctx.branch(3, Cmp::Gt, HUGE + x, 1.0) {
                let _ = x; // sinh(tiny) = tiny with inexact
                return;
            }
        }
        let t = x.abs().exp_m1();
        if ctx.branch_i32(4, Cmp::Lt, ix, 0x3ff0_0000) {
            let _ = h * (2.0 * t - t * t / (t + 1.0));
            return;
        }
        let _ = h * (t + t / (t + 1.0));
        return;
    }

    // |x| in [22, log(maxdouble)], return 0.5*exp(|x|)
    if ctx.branch_i32(5, Cmp::Lt, ix, 0x4086_2e42) {
        let _ = h * x.abs().exp();
        return;
    }

    // |x| in [log(maxdouble), overflowthreshold]
    let lx = low_word(x);
    let overflow = ctx.branch_i32(6, Cmp::Lt, ix, 0x4086_33ce)
        || (ctx.branch_i32(7, Cmp::Eq, ix, 0x4086_33ce)
            && ctx.branch(8, Cmp::Le, lx as f64, 0x8fb9_f87du32 as f64));
    if overflow {
        let w = (0.5 * x.abs()).exp();
        let _ = h * w * w;
        return;
    }

    // |x| > overflowthreshold: overflow
    let _ = x * HUGE;
    let _ = ctx.branch_i32(9, Cmp::Ge, jx, 0); // sign split on the overflow path
}

/// `e_cosh.c` — cosh(x). 8 conditional sites.
pub fn cosh(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let ix = high_word(x) & 0x7fff_ffff;

    // x is INF or NaN
    if ctx.branch_i32(0, Cmp::Ge, ix, 0x7ff0_0000) {
        let _ = x * x;
        return;
    }

    // |x| in [0, 0.5*ln2]: cosh = 1 + expm1(|x|)^2 / (2*exp(|x|))
    if ctx.branch_i32(1, Cmp::Lt, ix, 0x3fd6_2e43) {
        let t = x.abs().exp_m1();
        let w = 1.0 + t;
        // tiny x
        if ctx.branch_i32(2, Cmp::Lt, ix, 0x3c80_0000) {
            let _ = w;
            return;
        }
        let _ = 1.0 + (t * t) / (w + w);
        return;
    }

    // |x| in [0.5*ln2, 22]
    if ctx.branch_i32(3, Cmp::Lt, ix, 0x4036_0000) {
        let t = x.abs().exp();
        let _ = 0.5 * t + 0.5 / t;
        return;
    }

    // |x| in [22, log(maxdouble)]
    if ctx.branch_i32(4, Cmp::Lt, ix, 0x4086_2e42) {
        let _ = 0.5 * x.abs().exp();
        return;
    }

    // |x| in [log(maxdouble), overflowthreshold]
    let lx = low_word(x);
    let fits = ctx.branch_i32(5, Cmp::Lt, ix, 0x4086_33ce)
        || (ctx.branch_i32(6, Cmp::Eq, ix, 0x4086_33ce)
            && ctx.branch(7, Cmp::Le, lx as f64, 0x8fb9_f87du32 as f64));
    if fits {
        let w = (0.5 * x.abs()).exp();
        let _ = 0.5 * w * w;
        return;
    }

    // overflow
    let _ = HUGE * HUGE;
}

/// `s_asinh.c` — asinh(x). 6 conditional sites.
pub fn asinh(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let ix = hx & 0x7fff_ffff;
    let w;

    // x is inf or NaN
    if ctx.branch_i32(0, Cmp::Ge, ix, 0x7ff0_0000) {
        let _ = x + x;
        return;
    }
    // |x| < 2**-28
    if ctx.branch_i32(1, Cmp::Lt, ix, 0x3e30_0000) {
        if ctx.branch(2, Cmp::Gt, HUGE + x, 1.0) {
            let _ = x;
            return;
        }
    }
    // |x| > 2**28
    if ctx.branch_i32(3, Cmp::Gt, ix, 0x41b0_0000) {
        w = x.abs().ln() + LN2;
    } else if ctx.branch_i32(4, Cmp::Gt, ix, 0x4000_0000) {
        // 2**28 >= |x| > 2.0
        let t = x.abs();
        w = (2.0 * t + 1.0 / ((t * t + 1.0).sqrt() + t)).ln();
    } else {
        // 2.0 >= |x| >= 2**-28
        let t = x * x;
        w = (x.abs() + t / (1.0 + (1.0 + t).sqrt())).ln_1p();
    }
    let _ = if ctx.branch_i32(5, Cmp::Gt, hx, 0) {
        w
    } else {
        -w
    };
}

/// `e_acosh.c` — acosh(x). 5 conditional sites.
pub fn acosh(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let lx = low_word(x);

    // x < 1: NaN
    if ctx.branch_i32(0, Cmp::Lt, hx, 0x3ff0_0000) {
        let _ = (x - x) / (x - x);
        return;
    }
    // x >= 2**28
    if ctx.branch_i32(1, Cmp::Ge, hx, 0x41b0_0000) {
        // x is inf or NaN
        if ctx.branch_i32(2, Cmp::Ge, hx, 0x7ff0_0000) {
            let _ = x + x;
            return;
        }
        let _ = x.ln() + LN2;
        return;
    }
    // x == 1
    if ctx.branch(3, Cmp::Eq, ((hx - 0x3ff0_0000) | lx as i32) as f64, 0.0) {
        return; // acosh(1) = 0
    }
    // x > 2
    if ctx.branch_i32(4, Cmp::Gt, hx, 0x4000_0000) {
        let t = x * x;
        let _ = (2.0 * x - 1.0 / (x + (t - 1.0).sqrt())).ln();
        return;
    }
    // 1 < x < 2
    let t = x - 1.0;
    let _ = (t + (2.0 * t + t * t).sqrt()).ln_1p();
}

/// `e_atanh.c` — atanh(x). 6 conditional sites.
pub fn atanh(input: &[f64], ctx: &mut ExecCtx) {
    let x = input[0];
    let hx = high_word(x);
    let lx = low_word(x);
    let ix = hx & 0x7fff_ffff;

    // |x| > 1: NaN
    if ctx.branch(
        0,
        Cmp::Gt,
        (ix - 0x3ff0_0000) as f64 + (lx >> 31) as f64,
        0.0,
    ) {
        let _ = (x - x) / (x - x);
        return;
    }
    // |x| == 1: +-inf
    if ctx.branch_i32(1, Cmp::Eq, ix, 0x3ff0_0000) {
        let _ = x / 0.0;
        return;
    }
    // |x| < 2**-28
    if ctx.branch_i32(2, Cmp::Lt, ix, 0x3e30_0000) {
        if ctx.branch(3, Cmp::Gt, HUGE + x, 1.0) {
            let _ = x;
            return;
        }
    }
    let xa = f64::from_bits((ix as u64) << 32 | low_word(x) as u64);
    let t;
    // |x| < 0.5
    if ctx.branch_i32(4, Cmp::Lt, ix, 0x3fe0_0000) {
        let t2 = xa + xa;
        t = 0.5 * (t2 + t2 * xa / (1.0 - xa)).ln_1p();
    } else {
        t = 0.5 * ((xa + xa) / (1.0 - xa)).ln_1p();
    }
    let _ = if ctx.branch_i32(5, Cmp::Ge, hx, 0) {
        t
    } else {
        -t
    };
}

/// Number of conditional sites of each port in this module, used by the
/// suite registry.
pub mod sites {
    /// Sites in [`super::tanh`].
    pub const TANH: usize = 5;
    /// Sites in [`super::sinh`].
    pub const SINH: usize = 10;
    /// Sites in [`super::cosh`].
    pub const COSH: usize = 8;
    /// Sites in [`super::asinh`].
    pub const ASINH: usize = 6;
    /// Sites in [`super::acosh`].
    pub const ACOSH: usize = 5;
    /// Sites in [`super::atanh`].
    pub const ATANH: usize = 6;
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::ExecCtx;

    fn run(f: fn(&[f64], &mut ExecCtx), x: f64) -> ExecCtx {
        let mut ctx = ExecCtx::observe();
        f(&[x], &mut ctx);
        ctx
    }

    #[test]
    fn tanh_branches_match_expected_paths() {
        // Finite normal input takes the not-inf path and the |x| < 22 path.
        let ctx = run(tanh, 0.25);
        assert!(ctx
            .covered()
            .contains(coverme_runtime::BranchId::false_of(0)));
        assert!(ctx
            .covered()
            .contains(coverme_runtime::BranchId::true_of(2)));
        // Infinity exercises the first guard's true side.
        let ctx = run(tanh, f64::INFINITY);
        assert!(ctx
            .covered()
            .contains(coverme_runtime::BranchId::true_of(0)));
    }

    #[test]
    fn tanh_site_ids_stay_within_declared_range() {
        for x in [
            0.0,
            1e-30,
            0.5,
            1.5,
            25.0,
            -25.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ] {
            let ctx = run(tanh, x);
            for event in ctx.trace() {
                assert!((event.site as usize) < sites::TANH);
            }
        }
    }

    #[test]
    fn every_port_handles_special_values_without_panicking() {
        let cases: crate::SiteCases = &[
            (tanh, sites::TANH),
            (sinh, sites::SINH),
            (cosh, sites::COSH),
            (asinh, sites::ASINH),
            (acosh, sites::ACOSH),
            (atanh, sites::ATANH),
        ];
        let inputs = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.5,
            22.5,
            700.0,
            711.0,
            1e300,
            1e-300,
            5e-324,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        for &(f, declared) in cases {
            for &x in &inputs {
                let ctx = run(f, x);
                for event in ctx.trace() {
                    assert!(
                        (event.site as usize) < declared,
                        "site {} out of range {declared}",
                        event.site
                    );
                }
            }
        }
    }

    #[test]
    fn cosh_overflow_path_reachable() {
        let ctx = run(cosh, 1e308);
        assert!(ctx
            .covered()
            .contains(coverme_runtime::BranchId::false_of(5)));
    }

    #[test]
    fn acosh_domain_error_branch() {
        let ctx = run(acosh, 0.5);
        assert!(ctx
            .covered()
            .contains(coverme_runtime::BranchId::true_of(0)));
        let ctx = run(acosh, 1.0);
        assert!(ctx
            .covered()
            .contains(coverme_runtime::BranchId::true_of(3)));
    }
}
