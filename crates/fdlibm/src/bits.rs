//! Bit-level access to the IEEE-754 double representation.
//!
//! Fdlibm manipulates doubles through their 32-bit high and low words
//! (`__HI(x)` / `__LO(x)` in the original source, implemented there with
//! pointer casts such as `*(1+(int*)&x)`). These helpers provide the same
//! access in safe Rust via `f64::to_bits` / `f64::from_bits`.

/// The high (most significant) 32 bits of `x`, as a signed integer —
/// `__HI(x)` on a little-endian double layout.
pub fn high_word(x: f64) -> i32 {
    (x.to_bits() >> 32) as u32 as i32
}

/// The low (least significant) 32 bits of `x`, as an unsigned integer —
/// `__LO(x)`.
pub fn low_word(x: f64) -> u32 {
    x.to_bits() as u32
}

/// Rebuilds a double from its high and low words.
pub fn from_words(hi: i32, lo: u32) -> f64 {
    f64::from_bits(((hi as u32 as u64) << 32) | lo as u64)
}

/// Replaces the high word of `x`, keeping the low word — `__HI(x) = hi`.
pub fn with_high_word(x: f64, hi: i32) -> f64 {
    from_words(hi, low_word(x))
}

/// Replaces the low word of `x`, keeping the high word — `__LO(x) = lo`.
pub fn with_low_word(x: f64, lo: u32) -> f64 {
    from_words(high_word(x), lo)
}

/// `x * 2^n` computed by exponent manipulation (the way Fdlibm's `scalbn`
/// behaves for normal results), saturating to 0/inf at the extremes.
pub fn scalbn(x: f64, n: i32) -> f64 {
    x * 2f64.powi(n.clamp(-2100, 2100))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_round_trip() {
        for x in [0.0, -0.0, 1.0, -2.5, 1e300, 5e-324, f64::INFINITY] {
            assert_eq!(from_words(high_word(x), low_word(x)).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn high_word_of_known_constants() {
        assert_eq!(high_word(1.0), 0x3ff0_0000);
        assert_eq!(high_word(2.0), 0x4000_0000);
        assert_eq!(high_word(f64::INFINITY), 0x7ff0_0000);
        assert_eq!(high_word(-1.0), 0xbff0_0000u32 as i32);
        assert_eq!(high_word(0.0), 0);
    }

    #[test]
    fn abs_mask_matches_fdlibm_idiom() {
        // ix = hx & 0x7fffffff strips the sign bit.
        let x = -3.75;
        let ix = high_word(x) & 0x7fff_ffff;
        assert_eq!(ix, high_word(3.75));
    }

    #[test]
    fn with_word_setters() {
        let x = 1.5;
        assert_eq!(with_high_word(x, high_word(2.5)), 2.5);
        let y = with_low_word(x, 0xdead_beef);
        assert_eq!(low_word(y), 0xdead_beef);
        assert_eq!(high_word(y), high_word(x));
    }

    #[test]
    fn scalbn_scales_by_powers_of_two() {
        assert_eq!(scalbn(1.5, 4), 24.0);
        assert_eq!(scalbn(24.0, -4), 1.5);
        assert_eq!(scalbn(1.0, 5000), f64::INFINITY);
        assert_eq!(scalbn(1.0, -5000), 0.0);
    }
}
