//! Plain random testing ("Rand" in the paper's evaluation).

use std::time::{Duration, Instant};

use coverme_optim::rng::SplitMix64;
use coverme_runtime::{CoverageMap, ExecCtx, Program};

use crate::report::BaselineReport;

/// How random inputs are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RandomStrategy {
    /// Uniform in a box `[lo, hi]` per coordinate. This mirrors a naive
    /// pseudo-random generator over a "reasonable" range, which is what the
    /// paper's Rand implementation does.
    UniformBox {
        /// Lower bound per coordinate.
        lo: f64,
        /// Upper bound per coordinate.
        hi: f64,
    },
    /// Reinterpret random 64-bit patterns as doubles (keeps NaN/Inf out).
    /// Covers the entire exponent range, including subnormals.
    BitPattern,
    /// Alternate between the two above, one execution each.
    Mixed,
}

impl Default for RandomStrategy {
    fn default() -> Self {
        RandomStrategy::UniformBox { lo: -1e6, hi: 1e6 }
    }
}

/// Configuration for the random tester.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomConfig {
    /// Sampling strategy.
    pub strategy: RandomStrategy,
    /// Maximum number of program executions.
    pub max_executions: usize,
    /// Optional wall-clock budget (the paper gives Rand 10× CoverMe's time).
    pub time_budget: Option<Duration>,
    /// Random seed.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            strategy: RandomStrategy::default(),
            max_executions: 100_000,
            time_budget: None,
            seed: 0,
        }
    }
}

/// The random tester.
#[derive(Debug, Clone, Default)]
pub struct RandomTester {
    config: RandomConfig,
}

impl RandomTester {
    /// Creates a tester with the given configuration.
    pub fn new(config: RandomConfig) -> RandomTester {
        RandomTester { config }
    }

    /// Runs random testing on `program` and reports the coverage achieved.
    pub fn run<P: Program>(&self, program: &P) -> BaselineReport {
        let started = Instant::now();
        let mut rng = SplitMix64::new(self.config.seed ^ 0x5241_4E44);
        let mut coverage = CoverageMap::new(program.num_sites());
        let arity = program.arity();
        let mut executions = 0usize;

        while executions < self.config.max_executions {
            if let Some(budget) = self.config.time_budget {
                if started.elapsed() >= budget {
                    break;
                }
            }
            if coverage.is_fully_covered() {
                break;
            }
            let input: Vec<f64> = (0..arity)
                .map(|_| self.sample(&mut rng, executions))
                .collect();
            let mut ctx = ExecCtx::observe().without_trace();
            program.execute(&input, &mut ctx);
            coverage.record(&ctx);
            executions += 1;
        }

        BaselineReport {
            tester: "Rand".to_string(),
            program: program.name().to_string(),
            coverage,
            executions,
            wall_time: started.elapsed(),
        }
    }

    fn sample(&self, rng: &mut SplitMix64, execution: usize) -> f64 {
        match self.config.strategy {
            RandomStrategy::UniformBox { lo, hi } => rng.uniform(lo, hi),
            RandomStrategy::BitPattern => bit_pattern(rng),
            RandomStrategy::Mixed => {
                if execution.is_multiple_of(2) {
                    rng.uniform(-1e6, 1e6)
                } else {
                    bit_pattern(rng)
                }
            }
        }
    }
}

fn bit_pattern(rng: &mut SplitMix64) -> f64 {
    loop {
        let candidate = f64::from_bits(rng.next_u64());
        if candidate.is_finite() {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{Cmp, FnProgram};

    fn easy_program() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("easy", 1, 1, |input: &[f64], ctx: &mut ExecCtx| {
            if ctx.branch(0, Cmp::Gt, input[0], 0.0) {
                // positive side
            }
        })
    }

    fn hard_program() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("hard", 1, 1, |input: &[f64], ctx: &mut ExecCtx| {
            if ctx.branch(0, Cmp::Eq, input[0], 12345.678) {
                // essentially impossible to hit by chance
            }
        })
    }

    #[test]
    fn covers_easy_programs_quickly() {
        let report = RandomTester::new(RandomConfig {
            max_executions: 10_000,
            ..RandomConfig::default()
        })
        .run(&easy_program());
        assert_eq!(report.branch_coverage_percent(), 100.0);
        assert!(report.executions < 10_000, "early exit on full coverage");
    }

    #[test]
    fn misses_exact_equality_branches() {
        let report = RandomTester::new(RandomConfig {
            max_executions: 5_000,
            seed: 9,
            ..RandomConfig::default()
        })
        .run(&hard_program());
        assert!(report.branch_coverage_percent() <= 50.0);
        assert_eq!(report.executions, 5_000);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            RandomTester::new(RandomConfig {
                max_executions: 100,
                seed: 42,
                ..RandomConfig::default()
            })
            .run(&hard_program())
            .coverage
            .covered_count()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bit_pattern_strategy_reaches_extreme_values() {
        let witness = FnProgram::new("extreme", 1, 1, |input: &[f64], ctx: &mut ExecCtx| {
            if ctx.branch(0, Cmp::Gt, input[0].abs(), 1e100) {
                // needs a huge input
            }
        });
        let report = RandomTester::new(RandomConfig {
            strategy: RandomStrategy::BitPattern,
            max_executions: 10_000,
            ..RandomConfig::default()
        })
        .run(&witness);
        assert_eq!(report.branch_coverage_percent(), 100.0);
    }

    #[test]
    fn respects_time_budget() {
        let report = RandomTester::new(RandomConfig {
            max_executions: usize::MAX,
            time_budget: Some(Duration::from_millis(20)),
            ..RandomConfig::default()
        })
        .run(&hard_program());
        assert!(report.wall_time < Duration::from_secs(5));
    }
}
