//! An AUSTIN-style search-based tester.
//!
//! AUSTIN (Lakhotia et al.) combines symbolic execution with search-based
//! testing; on floating-point constraints its effectiveness comes from the
//! search component, which is Korel's **alternating variable method** (AVM)
//! guided by the classic fitness function
//!
//! ```text
//! fitness(target, input) = approach_level + normalize(branch_distance)
//! ```
//!
//! where the approach level counts how many control-dependence levels away
//! the execution diverged from the target branch, and the branch distance is
//! evaluated at the diverging conditional. This module implements that
//! search loop per uncovered target branch: exploratory ±δ probes on each
//! input variable followed by accelerating pattern moves, restarting from
//! random points when the search stalls.

use std::time::{Duration, Instant};

use coverme_optim::rng::SplitMix64;
use coverme_runtime::{distance, BranchId, CoverageMap, Direction, ExecCtx, Program, Trace};

use crate::report::BaselineReport;

/// Configuration of the AUSTIN-style tester.
#[derive(Debug, Clone, PartialEq)]
pub struct AustinConfig {
    /// Maximum number of program executions across all targets.
    pub max_executions: usize,
    /// Maximum executions spent on a single target branch before giving up.
    pub per_target_budget: usize,
    /// Number of random restarts per target.
    pub restarts: usize,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Random seed.
    pub seed: u64,
}

impl Default for AustinConfig {
    fn default() -> Self {
        AustinConfig {
            max_executions: 200_000,
            per_target_budget: 4_000,
            restarts: 4,
            time_budget: None,
            seed: 0,
        }
    }
}

/// The AUSTIN-style search-based tester.
#[derive(Debug, Clone, Default)]
pub struct AustinTester {
    config: AustinConfig,
}

impl AustinTester {
    /// Creates a tester with the given configuration.
    pub fn new(config: AustinConfig) -> AustinTester {
        AustinTester { config }
    }

    /// Runs search-based testing on `program`.
    pub fn run<P: Program>(&self, program: &P) -> BaselineReport {
        let started = Instant::now();
        let mut rng = SplitMix64::new(self.config.seed ^ 0xA05_711);
        let mut coverage = CoverageMap::new(program.num_sites());
        let mut executions = 0usize;
        let arity = program.arity();

        // Initial corpus of a few random executions so easy branches are
        // covered before the per-target searches start.
        for _ in 0..16 {
            let input: Vec<f64> = (0..arity).map(|_| rng.uniform(-1e3, 1e3)).collect();
            let mut ctx = ExecCtx::observe().without_trace();
            program.execute(&input, &mut ctx);
            coverage.record(&ctx);
            executions += 1;
        }

        // Work through uncovered branches one target at a time, as AUSTIN's
        // driver does.
        loop {
            if self.exhausted(executions, &started) || coverage.is_fully_covered() {
                break;
            }
            let Some(target) = coverage.uncovered_branches().next() else {
                break;
            };
            let before = coverage.covered_count();
            self.search_target(
                program,
                target,
                &mut coverage,
                &mut executions,
                &mut rng,
                &started,
            );
            if coverage.covered_count() == before {
                // The target resisted its budget; AUSTIN reports it as
                // unreachable-for-now and moves on. Mark it by recording a
                // synthetic attempt counter so the loop terminates: we simply
                // stop trying targets we already failed once.
                break;
            }
        }

        // One more pass over any remaining uncovered branches, each with a
        // fresh budget, so a lucky later corpus can still help.
        let remaining: Vec<BranchId> = coverage.uncovered_branches().collect();
        for target in remaining {
            if self.exhausted(executions, &started) {
                break;
            }
            self.search_target(
                program,
                target,
                &mut coverage,
                &mut executions,
                &mut rng,
                &started,
            );
        }

        BaselineReport {
            tester: "Austin".to_string(),
            program: program.name().to_string(),
            coverage,
            executions,
            wall_time: started.elapsed(),
        }
    }

    fn exhausted(&self, executions: usize, started: &Instant) -> bool {
        if executions >= self.config.max_executions {
            return true;
        }
        if let Some(budget) = self.config.time_budget {
            if started.elapsed() >= budget {
                return true;
            }
        }
        false
    }

    /// AVM search for one target branch.
    fn search_target<P: Program>(
        &self,
        program: &P,
        target: BranchId,
        coverage: &mut CoverageMap,
        executions: &mut usize,
        rng: &mut SplitMix64,
        started: &Instant,
    ) {
        let arity = program.arity();
        let mut spent = 0usize;

        for restart in 0..self.config.restarts.max(1) {
            if spent >= self.config.per_target_budget || self.exhausted(*executions, started) {
                return;
            }
            let mut current: Vec<f64> = if restart == 0 {
                vec![0.0; arity]
            } else {
                (0..arity).map(|_| rng.uniform(-1e6, 1e6)).collect()
            };
            let mut current_fitness =
                self.evaluate(program, &current, target, coverage, executions);
            spent += 1;
            if current_fitness == 0.0 {
                return;
            }

            // Alternating variable method.
            let mut variable = 0usize;
            let mut stalled_variables = 0usize;
            while stalled_variables < arity
                && spent < self.config.per_target_budget
                && !self.exhausted(*executions, started)
            {
                let mut improved = false;
                // Exploratory moves: +-delta on the current variable.
                for &delta in &[1.0, -1.0, 0.1, -0.1] {
                    let mut probe = current.clone();
                    probe[variable] += delta;
                    let fitness = self.evaluate(program, &probe, target, coverage, executions);
                    spent += 1;
                    if fitness < current_fitness {
                        // Pattern moves: accelerate in the improving direction.
                        let mut step = delta * 2.0;
                        current = probe;
                        current_fitness = fitness;
                        improved = true;
                        loop {
                            if spent >= self.config.per_target_budget
                                || self.exhausted(*executions, started)
                            {
                                break;
                            }
                            let mut next = current.clone();
                            next[variable] += step;
                            let next_fitness =
                                self.evaluate(program, &next, target, coverage, executions);
                            spent += 1;
                            if next_fitness < current_fitness {
                                current = next;
                                current_fitness = next_fitness;
                                step *= 2.0;
                            } else {
                                break;
                            }
                        }
                        break;
                    }
                }
                if current_fitness == 0.0 {
                    return;
                }
                if improved {
                    stalled_variables = 0;
                } else {
                    stalled_variables += 1;
                }
                variable = (variable + 1) % arity;
            }
        }
    }

    /// Executes the program and computes the AUSTIN fitness of the target.
    /// A fitness of zero means the target branch was covered.
    fn evaluate<P: Program>(
        &self,
        program: &P,
        input: &[f64],
        target: BranchId,
        coverage: &mut CoverageMap,
        executions: &mut usize,
    ) -> f64 {
        let mut ctx = ExecCtx::observe();
        program.execute(input, &mut ctx);
        *executions += 1;
        coverage.record(&ctx);
        if ctx.covered().contains(target) {
            return 0.0;
        }
        fitness_of_trace(ctx.trace(), target)
    }
}

/// The classic search-based fitness: approach level plus normalized branch
/// distance at the point of divergence.
fn fitness_of_trace(trace: &Trace, target: BranchId) -> f64 {
    // Find the last execution of the target's site: that is where the
    // execution diverged (approach level 0). If the site was never reached,
    // the approach level is the number of decisions the trace made (a crude
    // but monotone control-dependence proxy).
    let mut divergence = None;
    for event in trace.iter() {
        if event.site == target.site {
            divergence = Some(event);
        }
    }
    match divergence {
        Some(event) => {
            let op = match target.direction {
                Direction::True => event.op,
                Direction::False => event.op.negate(),
            };
            normalize(distance(op, event.lhs, event.rhs, f64::EPSILON))
        }
        None => trace.len() as f64 + 1.0,
    }
}

/// Branch-distance normalization mapping distances into `[0, 1)`.
///
/// The `d / (d + 1)` form is used rather than AUSTIN's `1 − 1.001^(−d)`
/// because the latter saturates to exactly `1.0` in double precision for the
/// large distances floating-point guards produce, erasing the very gradient
/// the search needs.
fn normalize(d: f64) -> f64 {
    if d.is_infinite() {
        1.0
    } else {
        d / (d + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{Cmp, FnProgram};

    fn equality_program() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("needle", 1, 1, |input: &[f64], ctx: &mut ExecCtx| {
            if ctx.branch(0, Cmp::Eq, input[0], 444.0) {
                // requires hitting exactly 444.0
            }
        })
    }

    fn nested_program() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("nested", 2, 2, |input: &[f64], ctx: &mut ExecCtx| {
            if ctx.branch(0, Cmp::Gt, input[0], 100.0) && ctx.branch(1, Cmp::Le, input[1], -50.0) {
                // both conditions must hold
            }
        })
    }

    #[test]
    fn normalization_is_monotone_and_bounded() {
        assert_eq!(normalize(0.0), 0.0);
        assert!(normalize(1.0) < normalize(100.0));
        assert!(normalize(1e300) <= 1.0);
        assert_eq!(normalize(f64::INFINITY), 1.0);
    }

    #[test]
    fn avm_solves_exact_equality_via_distance_descent() {
        let report = AustinTester::new(AustinConfig {
            max_executions: 50_000,
            seed: 3,
            ..AustinConfig::default()
        })
        .run(&equality_program());
        assert_eq!(report.branch_coverage_percent(), 100.0, "{report}");
    }

    #[test]
    fn avm_reaches_nested_branches() {
        let report = AustinTester::new(AustinConfig {
            max_executions: 50_000,
            seed: 11,
            ..AustinConfig::default()
        })
        .run(&nested_program());
        assert_eq!(report.branch_coverage_percent(), 100.0, "{report}");
    }

    #[test]
    fn respects_execution_budget() {
        let report = AustinTester::new(AustinConfig {
            max_executions: 500,
            per_target_budget: 100,
            ..AustinConfig::default()
        })
        .run(&equality_program());
        assert!(report.executions <= 600);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            AustinTester::new(AustinConfig {
                max_executions: 2_000,
                seed: 7,
                ..AustinConfig::default()
            })
            .run(&nested_program())
            .coverage
            .covered_count()
        };
        assert_eq!(run(), run());
    }
}
