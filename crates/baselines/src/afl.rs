//! An AFL-style coverage-guided greybox fuzzer.
//!
//! The paper compares CoverMe against Google's AFL. This module implements
//! the mechanism AFL owes its coverage to, scaled down to the fixed-size
//! inputs of the benchmark functions:
//!
//! * the input is the byte representation of the `f64` input vector,
//! * coverage feedback is an **edge bitmap**: every consecutive pair of
//!   branch decisions in the execution trace is hashed into a 64 Ki-slot
//!   map (AFL's `prev_location ^ cur_location` trick),
//! * a **seed queue** holds every input that produced a previously unseen
//!   edge; seeds are mutated in turn,
//! * mutations follow AFL's staging: deterministic bit flips, byte flips,
//!   arithmetic increments/decrements, interesting-value substitution, then
//!   a randomized havoc stage stacking several of those.

use std::time::{Duration, Instant};

use coverme_optim::rng::SplitMix64;
use coverme_runtime::{CoverageMap, ExecCtx, Program};

use crate::report::BaselineReport;

/// Size of the edge-coverage bitmap (64 Ki entries, as in AFL).
const MAP_SIZE: usize = 1 << 16;

/// Interesting 8/16/32-bit values AFL substitutes during its deterministic
/// stages, reinterpreted here at the byte level of the double encoding.
const INTERESTING: &[i64] = &[
    -128,
    -1,
    0,
    1,
    16,
    32,
    64,
    100,
    127,
    -32768,
    32767,
    65535,
    i32::MIN as i64,
    i32::MAX as i64,
];

/// Configuration for the AFL-style fuzzer.
#[derive(Debug, Clone, PartialEq)]
pub struct AflConfig {
    /// Maximum number of program executions.
    pub max_executions: usize,
    /// Optional wall-clock budget (the paper gives AFL 10× CoverMe's time).
    pub time_budget: Option<Duration>,
    /// Number of stacked mutations per havoc iteration.
    pub havoc_stack: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for AflConfig {
    fn default() -> Self {
        AflConfig {
            max_executions: 200_000,
            time_budget: None,
            havoc_stack: 6,
            seed: 0,
        }
    }
}

/// The AFL-style greybox fuzzer.
#[derive(Debug, Clone, Default)]
pub struct AflFuzzer {
    config: AflConfig,
}

struct FuzzState<'p, P: Program> {
    program: &'p P,
    coverage: CoverageMap,
    edge_map: Vec<bool>,
    queue: Vec<Vec<u8>>,
    executions: usize,
}

impl<P: Program> FuzzState<'_, P> {
    /// Executes one input; returns `true` if it exercised a new edge and was
    /// therefore added to the queue.
    fn run_input(&mut self, bytes: &[u8]) -> bool {
        let input = decode(bytes);
        let mut ctx = ExecCtx::observe();
        self.program.execute(&input, &mut ctx);
        self.executions += 1;
        self.coverage.record(&ctx);

        let mut new_edge = false;
        let mut prev = 0usize;
        for event in ctx.trace() {
            let cur = (event.branch().index().wrapping_mul(0x9E37) ^ 0x517C) & (MAP_SIZE - 1);
            let slot = (prev ^ cur) & (MAP_SIZE - 1);
            if !self.edge_map[slot] {
                self.edge_map[slot] = true;
                new_edge = true;
            }
            prev = cur >> 1;
        }
        if new_edge {
            self.queue.push(bytes.to_vec());
        }
        new_edge
    }
}

impl AflFuzzer {
    /// Creates a fuzzer with the given configuration.
    pub fn new(config: AflConfig) -> AflFuzzer {
        AflFuzzer { config }
    }

    /// Fuzzes `program` until the execution or time budget is exhausted.
    pub fn run<P: Program>(&self, program: &P) -> BaselineReport {
        let started = Instant::now();
        let mut rng = SplitMix64::new(self.config.seed ^ 0xAF1_AF1);
        let arity = program.arity();
        let mut state = FuzzState {
            program,
            coverage: CoverageMap::new(program.num_sites()),
            edge_map: vec![false; MAP_SIZE],
            queue: Vec::new(),
            executions: 0,
        };

        // Initial seeds: zero, one, and a couple of random vectors, the same
        // spirit as the paper's scanf-based harness being fed small seeds.
        let seeds: Vec<Vec<f64>> = vec![
            vec![0.0; arity],
            vec![1.0; arity],
            (0..arity).map(|_| rng.uniform(-1000.0, 1000.0)).collect(),
            (0..arity).map(|_| rng.uniform(-1.0, 1.0)).collect(),
        ];
        for seed in seeds {
            state.run_input(&encode(&seed));
        }

        'outer: loop {
            if state.queue.is_empty() {
                // Nothing interesting yet; feed random inputs.
                let random: Vec<f64> = (0..arity).map(|_| rng.uniform(-1e6, 1e6)).collect();
                state.run_input(&encode(&random));
            }
            let mut index = 0;
            while index < state.queue.len() {
                let parent = state.queue[index].clone();
                index += 1;
                // Deterministic stages.
                for mutated in deterministic_mutations(&parent) {
                    if self.exhausted(&state, &started) {
                        break 'outer;
                    }
                    state.run_input(&mutated);
                    if state.coverage.is_fully_covered() {
                        break 'outer;
                    }
                }
                // Havoc stage.
                for _ in 0..64 {
                    if self.exhausted(&state, &started) {
                        break 'outer;
                    }
                    let mutated = havoc(&parent, self.config.havoc_stack, &mut rng);
                    state.run_input(&mutated);
                    if state.coverage.is_fully_covered() {
                        break 'outer;
                    }
                }
            }
            if self.exhausted(&state, &started) || state.coverage.is_fully_covered() {
                break;
            }
        }

        BaselineReport {
            tester: "AFL".to_string(),
            program: program.name().to_string(),
            coverage: state.coverage,
            executions: state.executions,
            wall_time: started.elapsed(),
        }
    }

    fn exhausted<P: Program>(&self, state: &FuzzState<'_, P>, started: &Instant) -> bool {
        if state.executions >= self.config.max_executions {
            return true;
        }
        if let Some(budget) = self.config.time_budget {
            if started.elapsed() >= budget {
                return true;
            }
        }
        false
    }
}

fn encode(input: &[f64]) -> Vec<u8> {
    input.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn decode(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|chunk| f64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
        .collect()
}

/// AFL's deterministic stages, trimmed to the ones that matter for 8/16-byte
/// inputs: walking bit flips, byte flips, +-1..35 arithmetic on each byte,
/// and interesting-value substitution on each 8-byte lane.
fn deterministic_mutations(parent: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    // Walking single-bit flips.
    for bit in 0..parent.len() * 8 {
        let mut m = parent.to_vec();
        m[bit / 8] ^= 1 << (bit % 8);
        out.push(m);
    }
    // Byte flips.
    for byte in 0..parent.len() {
        let mut m = parent.to_vec();
        m[byte] ^= 0xff;
        out.push(m);
    }
    // Arithmetic on single bytes.
    for byte in 0..parent.len() {
        for delta in [1i16, -1, 7, -7, 35, -35] {
            let mut m = parent.to_vec();
            m[byte] = (m[byte] as i16).wrapping_add(delta) as u8;
            out.push(m);
        }
    }
    // Interesting values dropped into each 8-byte lane, both as raw bit
    // patterns and as small doubles.
    for lane in 0..parent.len() / 8 {
        for &value in INTERESTING {
            let mut m = parent.to_vec();
            m[lane * 8..lane * 8 + 8].copy_from_slice(&(value as u64).to_le_bytes());
            out.push(m);
            let mut m = parent.to_vec();
            m[lane * 8..lane * 8 + 8].copy_from_slice(&(value as f64).to_le_bytes());
            out.push(m);
        }
    }
    out
}

/// AFL's havoc stage: stack several random mutations.
fn havoc(parent: &[u8], stack: usize, rng: &mut SplitMix64) -> Vec<u8> {
    let mut m = parent.to_vec();
    for _ in 0..stack.max(1) {
        match rng.index(5) {
            0 => {
                let bit = rng.index(m.len() * 8);
                m[bit / 8] ^= 1 << (bit % 8);
            }
            1 => {
                let byte = rng.index(m.len());
                m[byte] = rng.next_u64() as u8;
            }
            2 => {
                let byte = rng.index(m.len());
                m[byte] = (m[byte] as i16).wrapping_add(rng.uniform(-35.0, 35.0) as i16) as u8;
            }
            3 => {
                let lane = rng.index(m.len() / 8);
                let value = INTERESTING[rng.index(INTERESTING.len())] as f64;
                m[lane * 8..lane * 8 + 8].copy_from_slice(&value.to_le_bytes());
            }
            _ => {
                // Swap two lanes (a tiny stand-in for AFL's splice stage).
                if m.len() >= 16 {
                    let a = rng.index(m.len() / 8) * 8;
                    let b = rng.index(m.len() / 8) * 8;
                    for i in 0..8 {
                        m.swap(a + i, b + i);
                    }
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{Cmp, FnProgram};

    fn nested_program() -> FnProgram<impl Fn(&[f64], &mut ExecCtx)> {
        FnProgram::new("nested", 1, 3, |input: &[f64], ctx: &mut ExecCtx| {
            let x = input[0];
            if ctx.branch(0, Cmp::Gt, x, 0.0)
                && ctx.branch(1, Cmp::Gt, x, 1000.0)
                && ctx.branch(2, Cmp::Lt, x, 2000.0)
            {
                // deep branch
            }
        })
    }

    #[test]
    fn encode_decode_roundtrip() {
        let input = vec![1.5, -2.25e10, 0.0];
        assert_eq!(decode(&encode(&input)), input);
    }

    #[test]
    fn deterministic_mutations_preserve_length() {
        let parent = encode(&[3.7]);
        for m in deterministic_mutations(&parent) {
            assert_eq!(m.len(), parent.len());
        }
    }

    #[test]
    fn havoc_preserves_length_and_changes_something_eventually() {
        let parent = encode(&[3.7, -1.0]);
        let mut rng = SplitMix64::new(1);
        let mut changed = false;
        for _ in 0..32 {
            let m = havoc(&parent, 4, &mut rng);
            assert_eq!(m.len(), parent.len());
            if m != parent {
                changed = true;
            }
        }
        assert!(changed);
    }

    #[test]
    fn fuzzer_reaches_nested_branches_better_than_nothing() {
        let report = AflFuzzer::new(AflConfig {
            max_executions: 30_000,
            seed: 5,
            ..AflConfig::default()
        })
        .run(&nested_program());
        // The outer two branches are easy; the guided search should find at
        // least 4 of the 6 branch sides.
        assert!(
            report.coverage.covered_count() >= 4,
            "covered only {} branches",
            report.coverage.covered_count()
        );
        assert!(report.executions <= 30_000);
    }

    #[test]
    fn stops_early_when_everything_is_covered() {
        let easy = FnProgram::new("easy", 1, 1, |input: &[f64], ctx: &mut ExecCtx| {
            ctx.branch(0, Cmp::Gt, input[0], 0.0);
        });
        let report = AflFuzzer::new(AflConfig {
            max_executions: 1_000_000,
            ..AflConfig::default()
        })
        .run(&easy);
        assert_eq!(report.branch_coverage_percent(), 100.0);
        assert!(report.executions < 100_000);
    }

    #[test]
    fn respects_time_budget() {
        let report = AflFuzzer::new(AflConfig {
            max_executions: usize::MAX,
            time_budget: Some(Duration::from_millis(30)),
            ..AflConfig::default()
        })
        .run(&nested_program());
        assert!(report.wall_time < Duration::from_secs(5));
    }
}
