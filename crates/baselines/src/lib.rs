//! Baseline testers from the CoverMe evaluation (Sect. 6.1 of the paper):
//!
//! * [`RandomTester`] — plain random testing ("Rand" in Tables 2 and 5),
//! * [`AflFuzzer`] — a coverage-guided greybox fuzzer in the style of AFL:
//!   an edge-coverage bitmap, a seed queue, deterministic bit/byte/arith
//!   mutation stages and a havoc stage operating on the byte representation
//!   of the input vector,
//! * [`AustinTester`] — a search-based tester in the style of AUSTIN:
//!   per-target-branch search guided by approach level + normalized branch
//!   distance, using Korel's alternating variable method (exploratory and
//!   pattern moves).
//!
//! All three consume the same [`coverme_runtime::Program`] abstraction as
//! CoverMe itself and report a [`BaselineReport`] with the accumulated
//! branch coverage, so the table harnesses can compare them head-to-head.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod afl;
pub mod austin;
pub mod random;
pub mod report;

pub use afl::{AflConfig, AflFuzzer};
pub use austin::{AustinConfig, AustinTester};
pub use random::{RandomConfig, RandomStrategy, RandomTester};
pub use report::BaselineReport;
