//! Common result type for the baseline testers.

use std::time::Duration;

use coverme_runtime::CoverageMap;

/// What a baseline tester achieved on one program.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Tester name ("Rand", "AFL", "Austin").
    pub tester: String,
    /// Program name.
    pub program: String,
    /// Accumulated branch coverage.
    pub coverage: CoverageMap,
    /// Number of program executions performed.
    pub executions: usize,
    /// Wall-clock time spent.
    pub wall_time: Duration,
}

impl BaselineReport {
    /// Branch coverage percentage (the number the tables report).
    pub fn branch_coverage_percent(&self) -> f64 {
        self.coverage.branch_coverage_percent()
    }

    /// Block coverage percentage (line-coverage proxy for Table 5).
    pub fn block_coverage_percent(&self) -> f64 {
        self.coverage.block_coverage_percent()
    }
}

impl std::fmt::Display for BaselineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {}: {:.1}% branch coverage after {} executions in {:.2?}",
            self.tester,
            self.program,
            self.branch_coverage_percent(),
            self.executions,
            self.wall_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverme_runtime::{BranchId, BranchSet};

    #[test]
    fn display_and_percentages() {
        let mut coverage = CoverageMap::new(2);
        let covered: BranchSet = [BranchId::true_of(0)].into_iter().collect();
        coverage.record_set(&covered);
        let report = BaselineReport {
            tester: "Rand".into(),
            program: "toy".into(),
            coverage,
            executions: 10,
            wall_time: Duration::from_millis(3),
        };
        assert_eq!(report.branch_coverage_percent(), 25.0);
        assert!(report.block_coverage_percent() > 25.0);
        assert!(report.to_string().contains("Rand on toy"));
    }
}
