//! Differential properties of the FPIR→tape lowering pass.
//!
//! The tape backend ([`coverme_fpir::lower`]) promises to be a *pure*
//! performance layer: every observable of an execution — the returned
//! value, the covered branch set, the pen/representing value, the
//! [`RunOutcome`] classification, even the engine's cache behavior — must
//! be bit-identical to the reference interpreter. This suite pins that
//! promise over the whole generated corpus (200+ modules, including the
//! zero-step-loop timeout hazard and the recursive trap hazard) and over
//! the checked-in `examples/fpir/` corpus (including `spin.fpir`, which
//! must time out identically under both backends).
//!
//! Failures print the offending seed; `generate_source(seed)` reproduces
//! the exact program.

use coverme::{BackendMode, CacheMode, ObjectiveEngine};
use coverme_fpir::generate::{generate_source, ENTRY_NAME};
use coverme_fpir::{compile, lower, IrProgram};
use coverme_runtime::{BranchId, BranchSet, ExecCtx, Program, RunOutcome, SimdIsa};

/// How many generated programs each property sweeps. The acceptance bar
/// for this suite is 200; keep it there or above.
const PROGRAMS: u64 = 200;

/// Fuel per evaluation: enough for every terminating generated loop, small
/// enough that the hazard programs abort quickly.
const FUEL: usize = 20_000;

/// SplitMix64, for input points — deterministic, so failures replay.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A point with coordinates spanning zero crossings and the literal
    /// pool of the generator, so conditions actually flip.
    fn point(&mut self, arity: usize) -> Vec<f64> {
        (0..arity).map(|_| (self.next_f64() - 0.5) * 40.0).collect()
    }
}

fn compile_seed(seed: u64) -> IrProgram {
    let source = generate_source(seed);
    compile(&source, ENTRY_NAME)
        .unwrap_or_else(|e| panic!("seed {seed} failed to compile: {e}\n{source}"))
        .with_fuel(FUEL)
}

/// A plausible mid-search saturation snapshot: every branch saturated
/// independently with probability 1/3.
fn random_saturation(rng: &mut Rng, num_sites: usize) -> BranchSet {
    let mut set = BranchSet::with_sites(num_sites);
    for site in 0..num_sites as u32 {
        if rng.next_u64().is_multiple_of(3) {
            set.insert(BranchId::true_of(site));
        }
        if rng.next_u64().is_multiple_of(3) {
            set.insert(BranchId::false_of(site));
        }
    }
    set
}

/// Runs `label` under interpreter and tape with identical fresh contexts
/// and asserts every observable matches bit for bit.
fn assert_executions_agree(program: &IrProgram, input: &[f64], label: &str) {
    let tape = lower(program).unwrap_or_else(|e| panic!("{label}: lowering failed: {e}"));
    for observe in [true, false] {
        let make_ctx = || {
            if observe {
                ExecCtx::observe()
            } else {
                ExecCtx::representing(BranchSet::with_sites(program.num_sites()))
            }
        };
        let mut interp_ctx = make_ctx();
        program.execute(input, &mut interp_ctx);
        let mut tape_ctx = make_ctx();
        tape.execute(input, &mut tape_ctx);
        assert_eq!(
            interp_ctx.run_outcome(),
            tape_ctx.run_outcome(),
            "{label}: outcome diverged (observe={observe})"
        );
        assert_eq!(
            interp_ctx.covered(),
            tape_ctx.covered(),
            "{label}: coverage diverged (observe={observe})"
        );
        if !observe {
            assert_eq!(
                interp_ctx.representing_value().to_bits(),
                tape_ctx.representing_value().to_bits(),
                "{label}: representing value diverged"
            );
        }
    }
}

#[test]
fn tape_matches_interpreter_on_raw_executions() {
    for seed in 0..PROGRAMS {
        let program = compile_seed(seed);
        let arity = Program::arity(&program);
        let mut rng = Rng(seed ^ 0x7A9E_0001);
        for index in 0..5 {
            let input = rng.point(arity);
            assert_executions_agree(&program, &input, &format!("seed {seed}, point {index}"));
        }
    }
}

#[test]
fn tape_engine_matches_interp_engine_bitwise() {
    // The same sweep the scalar/lane differential suite runs, but across
    // the backend axis: a tape engine and an interpreter engine must agree
    // on eval_scalar, eval_lanes and eval_full at every saturation
    // snapshot — values, coverage sets and outcome classifications alike.
    let mut aborted = 0u64;
    for seed in 0..PROGRAMS {
        let num_sites = compile_seed(seed).num_sites();
        let mut tape_engine = ObjectiveEngine::new(compile_seed(seed), 1.0)
            .cache_mode(CacheMode::Off)
            .backend_mode(BackendMode::Tape);
        let mut interp_engine = ObjectiveEngine::new(compile_seed(seed), 1.0)
            .cache_mode(CacheMode::Off)
            .backend_mode(BackendMode::Interp);
        assert_eq!(tape_engine.backend_name(), "tape", "seed {seed}");
        assert_eq!(interp_engine.backend_name(), "interp", "seed {seed}");
        let arity = tape_engine.arity();

        let mut rng = Rng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0x7A9E);
        let mut tape_values = Vec::new();
        let mut interp_values = Vec::new();
        for snapshot in 0..3 {
            if snapshot > 0 {
                let saturated = random_saturation(&mut rng, num_sites);
                tape_engine.retarget(&saturated);
                interp_engine.retarget(&saturated);
            }
            let points: Vec<Vec<f64>> = (0..6).map(|_| rng.point(arity)).collect();
            for (index, point) in points.iter().enumerate() {
                let t = tape_engine.eval_scalar(point);
                let i = interp_engine.eval_scalar(point);
                assert_eq!(
                    t.to_bits(),
                    i.to_bits(),
                    "seed {seed}, snapshot {snapshot}, point {index}: tape {t:e} != interp {i:e}"
                );
                let tf = tape_engine.eval_full(point);
                let inf = interp_engine.eval_full(point);
                assert_eq!(tf.outcome, inf.outcome, "seed {seed}, point {index}");
                assert_eq!(tf.value.to_bits(), inf.value.to_bits(), "seed {seed}");
                assert_eq!(tf.covered, inf.covered, "seed {seed}, point {index}");
                if tf.outcome != RunOutcome::Done {
                    aborted += 1;
                }
            }
            tape_values.clear();
            interp_values.clear();
            tape_engine.eval_lanes(&points, &mut tape_values);
            interp_engine.eval_lanes(&points, &mut interp_values);
            for (index, (t, i)) in tape_values.iter().zip(&interp_values).enumerate() {
                assert_eq!(
                    t.to_bits(),
                    i.to_bits(),
                    "seed {seed}, snapshot {snapshot}, lane {index}: tape {t:e} != interp {i:e}"
                );
            }
        }
    }
    // The hazard programs must actually abort somewhere in the sweep, or
    // the outcome comparison above never exercised the abort paths.
    assert!(aborted > 0, "no evaluation ever aborted across the corpus");
}

#[test]
fn every_simd_isa_agrees_on_the_generated_corpus() {
    // The ISA axis of the differential sweep: the same tape engine pinned
    // to each dispatch this machine supports (portable always, SSE2/AVX2
    // where present) must produce bit-identical values, outcome
    // classifications and coverage sets — the straight-line-SoA step and
    // the vectorized finalize trade speed, never semantics. Portable is
    // the reference; snapshots include a random mid-search saturation so
    // the deferred-penalty masks differ per lane.
    let isas = SimdIsa::supported();
    assert!(isas.contains(&SimdIsa::Portable));
    let mut aborted = 0u64;
    for seed in 0..PROGRAMS {
        let num_sites = compile_seed(seed).num_sites();
        let mut engines: Vec<(SimdIsa, ObjectiveEngine<IrProgram>)> = isas
            .iter()
            .map(|&isa| {
                (
                    isa,
                    ObjectiveEngine::new(compile_seed(seed), 1.0)
                        .cache_mode(CacheMode::Off)
                        .backend_mode(BackendMode::Tape)
                        .simd(isa),
                )
            })
            .collect();
        let arity = engines[0].1.arity();
        let mut rng = Rng(seed ^ 0x15A_0003);
        for snapshot in 0..2 {
            if snapshot > 0 {
                let saturated = random_saturation(&mut rng, num_sites);
                for (_, engine) in &mut engines {
                    engine.retarget(&saturated);
                }
            }
            let points: Vec<Vec<f64>> = (0..6).map(|_| rng.point(arity)).collect();
            for (index, point) in points.iter().enumerate() {
                let (_, reference_engine) = &mut engines[0];
                let reference = reference_engine.eval_full(point);
                if reference.outcome != RunOutcome::Done {
                    aborted += 1;
                }
                for (isa, engine) in engines.iter_mut().skip(1) {
                    let full = engine.eval_full(point);
                    assert_eq!(
                        full.value.to_bits(),
                        reference.value.to_bits(),
                        "seed {seed}, snapshot {snapshot}, point {index}: \
                         {isa} value {:e} != portable {:e}",
                        full.value,
                        reference.value,
                    );
                    assert_eq!(
                        full.outcome, reference.outcome,
                        "seed {seed}, point {index}: {isa} outcome diverged"
                    );
                    assert_eq!(
                        full.covered, reference.covered,
                        "seed {seed}, point {index}: {isa} coverage diverged"
                    );
                }
            }
            let mut reference_values = Vec::new();
            engines[0].1.eval_lanes(&points, &mut reference_values);
            let mut values = Vec::new();
            for (isa, engine) in engines.iter_mut().skip(1) {
                values.clear();
                engine.eval_lanes(&points, &mut values);
                for (index, (r, v)) in reference_values.iter().zip(&values).enumerate() {
                    assert_eq!(
                        r.to_bits(),
                        v.to_bits(),
                        "seed {seed}, snapshot {snapshot}, lane {index}: \
                         {isa} {v:e} != portable {r:e}"
                    );
                }
            }
        }
    }
    // The hazard programs must abort under every ISA, or the outcome
    // comparison never exercised the Timeout/Trap ordering.
    assert!(
        aborted > 0,
        "no evaluation ever aborted across the ISA sweep"
    );
}

#[test]
fn tape_is_cache_transparent() {
    // Cache visibility parity: a cached tape engine and an uncached
    // interpreter engine still agree bit for bit — the memo layer sits
    // above the backend and must stay invisible under both.
    let mut total_hits = 0u64;
    for seed in 0..PROGRAMS {
        let mut cached = ObjectiveEngine::new(compile_seed(seed), 1.0)
            .cache_mode(CacheMode::On)
            .backend_mode(BackendMode::Tape);
        let mut bare = ObjectiveEngine::new(compile_seed(seed), 1.0)
            .cache_mode(CacheMode::Off)
            .backend_mode(BackendMode::Interp);
        let arity = cached.arity();
        let mut rng = Rng(seed ^ 0xCAC4E);
        let mut points: Vec<Vec<f64>> = (0..5).map(|_| rng.point(arity)).collect();
        points.extend(points.clone());
        for (index, point) in points.iter().enumerate() {
            let with_cache = cached.eval_scalar(point);
            let without = bare.eval_scalar(point);
            assert_eq!(
                with_cache.to_bits(),
                without.to_bits(),
                "seed {seed}, point {index}: cached tape {with_cache:e} != interp {without:e}"
            );
        }
        total_hits += cached.telemetry().cache_hits;
    }
    assert!(total_hits > 0, "the cache never served a hit — dead test");
}

/// Loads one `examples/fpir/` corpus file, inferring the entry from the
/// file stem like the CLI does.
fn load_corpus(path: &std::path::Path) -> IrProgram {
    let source = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap();
    compile(&source, stem)
        .unwrap_or_else(|e| panic!("{path:?}: {e}"))
        .with_fuel(FUEL)
}

#[test]
fn corpus_files_agree_under_both_backends() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/fpir");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("examples/fpir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "fpir"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 3, "corpus shrank: {paths:?}");
    let mut saw_spin = false;
    for path in &paths {
        let program = load_corpus(path);
        let arity = Program::arity(&program);
        let mut rng = Rng(0x5EED ^ paths.len() as u64);
        for index in 0..8 {
            let input = rng.point(arity);
            assert_executions_agree(&program, &input, &format!("{path:?}, point {index}"));
        }
        if path.file_stem().is_some_and(|s| s == "spin") {
            saw_spin = true;
            // The non-terminating program must exhaust its fuel — and be
            // classified Timeout — under the tape exactly as under the
            // interpreter.
            let tape = lower(&program).expect("spin lowers");
            for ctx_program in [true, false] {
                let mut ctx = ExecCtx::observe();
                if ctx_program {
                    program.execute(&[1.0], &mut ctx);
                } else {
                    tape.execute(&[1.0], &mut ctx);
                }
                assert_eq!(
                    ctx.run_outcome(),
                    RunOutcome::Timeout,
                    "spin must time out (program={ctx_program})"
                );
            }
        }
    }
    assert!(saw_spin, "spin.fpir left the corpus");
}

#[test]
fn generated_tapes_serialize() {
    // Every generated module lowers to a tape whose listing mentions its
    // entry and every block — a cheap pin that the serializer stays total.
    for seed in 0..20u64 {
        let program = compile_seed(seed);
        let tape = lower(&program).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let listing = tape.serialize();
        assert!(listing.contains(ENTRY_NAME), "seed {seed}: {listing}");
        assert!(listing.contains("b0:"), "seed {seed}: {listing}");
    }
}
