//! Differential properties over generated FPIR programs.
//!
//! [`coverme_fpir::generate`] produces well-typed modules by construction,
//! some of which contain loops that legitimately exhaust the interpreter
//! fuel. Every program here goes through the *whole* stack — parse, check,
//! instrument, interpret, objective engine — and the suite pins the three
//! invariants the engine promises:
//!
//! 1. the scalar and lane-batched evaluation paths are **bit-identical**,
//!    at every saturation snapshot;
//! 2. memoization is invisible: cache on and cache off produce bit-identical
//!    values;
//! 3. every run is classified ([`RunOutcome`]), aborted runs surface the
//!    [`ABORTED_VALUE`] sentinel, and nothing in the pipeline panics.
//!
//! Failures print the offending seed; `generate_source(seed)` reproduces
//! the exact program.

use coverme::{CacheMode, CoverMe, CoverMeConfig, ObjectiveEngine, ABORTED_VALUE};
use coverme_fpir::generate::{generate_source, ENTRY_NAME};
use coverme_fpir::{compile, IrProgram};
use coverme_runtime::{BranchId, BranchSet, Program, RunOutcome};

/// How many generated programs each property sweeps. The acceptance bar for
/// this suite is 200; keep it there or above.
const PROGRAMS: u64 = 200;

/// Fuel per evaluation: enough for every terminating generated loop (bounds
/// are single digits), small enough that the ~10% of programs with a
/// zero-step loop hazard abort quickly.
const FUEL: usize = 20_000;

/// SplitMix64, for input points — deterministic, so failures replay.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A point with coordinates spanning zero crossings and the literal
    /// pool of the generator, so conditions actually flip.
    fn point(&mut self, arity: usize) -> Vec<f64> {
        (0..arity).map(|_| (self.next_f64() - 0.5) * 40.0).collect()
    }
}

fn compile_seed(seed: u64) -> IrProgram {
    let source = generate_source(seed);
    compile(&source, ENTRY_NAME)
        .unwrap_or_else(|e| panic!("seed {seed} failed to compile: {e}\n{source}"))
        .with_fuel(FUEL)
}

/// A plausible mid-search saturation snapshot: every branch saturated
/// independently with probability 1/3.
fn random_saturation(rng: &mut Rng, num_sites: usize) -> BranchSet {
    let mut set = BranchSet::with_sites(num_sites);
    for site in 0..num_sites as u32 {
        if rng.next_u64().is_multiple_of(3) {
            set.insert(BranchId::true_of(site));
        }
        if rng.next_u64().is_multiple_of(3) {
            set.insert(BranchId::false_of(site));
        }
    }
    set
}

#[test]
fn scalar_and_lane_paths_are_bit_identical_across_saturation_snapshots() {
    for seed in 0..PROGRAMS {
        let program = compile_seed(seed);
        let num_sites = program.num_sites();
        let arity = Program::arity(&program);
        let mut scalar_engine = ObjectiveEngine::new(program, 1.0).cache_mode(CacheMode::Off);
        let lane_program = compile_seed(seed);
        let mut lane_engine = ObjectiveEngine::new(lane_program, 1.0).cache_mode(CacheMode::Off);

        let mut rng = Rng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0xA5A5);
        let mut lane_values = Vec::new();
        // Snapshot 0 is the empty saturation set the search starts from.
        for snapshot in 0..3 {
            if snapshot > 0 {
                let saturated = random_saturation(&mut rng, num_sites);
                scalar_engine.retarget(&saturated);
                lane_engine.retarget(&saturated);
            }
            let points: Vec<Vec<f64>> = (0..6).map(|_| rng.point(arity)).collect();
            let scalar: Vec<f64> = points
                .iter()
                .map(|p| scalar_engine.eval_scalar(p))
                .collect();
            // `eval_lanes` appends to its output; clear between batches.
            lane_values.clear();
            lane_engine.eval_lanes(&points, &mut lane_values);
            for (index, (s, l)) in scalar.iter().zip(&lane_values).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    l.to_bits(),
                    "seed {seed}, snapshot {snapshot}, point {index}: scalar {s:e} != lane {l:e}"
                );
            }
        }
    }
}

#[test]
fn memoization_is_invisible_to_objective_values() {
    let mut total_hits = 0u64;
    for seed in 0..PROGRAMS {
        let mut cached = ObjectiveEngine::new(compile_seed(seed), 1.0).cache_mode(CacheMode::On);
        let mut bare = ObjectiveEngine::new(compile_seed(seed), 1.0).cache_mode(CacheMode::Off);
        let arity = cached.arity();

        let mut rng = Rng(seed ^ 0xC0FF_EE00);
        let mut points: Vec<Vec<f64>> = (0..5).map(|_| rng.point(arity)).collect();
        // Revisit every point so the cache actually answers queries.
        points.extend(points.clone());
        for (index, point) in points.iter().enumerate() {
            let with_cache = cached.eval_scalar(point);
            let without = bare.eval_scalar(point);
            assert_eq!(
                with_cache.to_bits(),
                without.to_bits(),
                "seed {seed}, point {index}: cached {with_cache:e} != uncached {without}"
            );
        }
        total_hits += cached.telemetry().cache_hits;
    }
    assert!(total_hits > 0, "the cache never served a hit — dead test");
}

#[test]
fn wide_arity_entry_points_bypass_the_memo_cache_but_stay_correct() {
    // The memo cache keys inputs as a fixed `[u64; MAX_CACHED_ARITY]`
    // array (4 words). FPIR entry points can take more parameters than
    // that, and such a program must fall back to uncached evaluation —
    // every point re-executes, zero hits — rather than aliasing distinct
    // points onto one truncated key. This pins both halves: correct
    // values, and a cache that never pretends to answer.
    let source = "\
double wide(double a, double b, double c, double d, double e) {
    double acc = a * 2.0 + b;
    if (acc < c) {
        acc = acc + d;
    }
    if (d > e) {
        acc = acc - e * 0.5;
    }
    return acc;
}";
    let program = compile(source, "wide").expect("wide.fpir compiles");
    let arity = Program::arity(&program);
    assert!(
        arity > coverme::objective::MAX_CACHED_ARITY,
        "test program must exceed the cache key width (arity {arity})"
    );
    let mut cached = ObjectiveEngine::new(program, 1.0).cache_mode(CacheMode::On);
    let mut bare =
        ObjectiveEngine::new(compile(source, "wide").unwrap(), 1.0).cache_mode(CacheMode::Off);
    let mut rng = Rng(0x31DE_CAFE);
    // Points that agree on their first four coordinates and differ only in
    // the fifth — exactly the aliasing a truncated key would collapse.
    let shared: Vec<f64> = rng.point(4);
    let mut points: Vec<Vec<f64>> = (0..6)
        .map(|_| {
            let mut p = shared.clone();
            p.push((rng.next_f64() - 0.5) * 40.0);
            p
        })
        .collect();
    points.extend(points.clone()); // revisits: a working cache would hit here
    for (index, point) in points.iter().enumerate() {
        let with_cache = cached.eval_scalar(point);
        let without = bare.eval_scalar(point);
        assert_eq!(
            with_cache.to_bits(),
            without.to_bits(),
            "point {index}: cached {with_cache:e} != uncached {without:e}"
        );
    }
    let telemetry = cached.telemetry();
    assert_eq!(telemetry.cache_hits, 0, "wide arity must never cache");
    assert_eq!(telemetry.evals, points.len() as u64);
}

#[test]
fn every_run_is_classified_and_aborts_surface_the_sentinel() {
    let mut done = 0u64;
    let mut timeouts = 0u64;
    for seed in 0..PROGRAMS {
        let mut engine = ObjectiveEngine::new(compile_seed(seed), 1.0);
        let arity = engine.arity();
        let mut rng = Rng(seed ^ 0xDEAD_10CC);
        for _ in 0..4 {
            let point = rng.point(arity);
            let evaluation = engine.eval_full(&point);
            match evaluation.outcome {
                RunOutcome::Done => {
                    done += 1;
                    assert!(
                        evaluation.value.is_finite() || evaluation.value.is_nan(),
                        "seed {seed}: completed run produced {:e}",
                        evaluation.value
                    );
                }
                RunOutcome::Timeout | RunOutcome::Trap => {
                    timeouts += 1;
                    assert_eq!(
                        evaluation.value.to_bits(),
                        ABORTED_VALUE.to_bits(),
                        "seed {seed}: aborted run leaked value {:e}",
                        evaluation.value
                    );
                }
            }
        }
    }
    // Both classes must actually occur across 200 programs, or the suite
    // exercises only half the classifier.
    assert!(done > 0, "no generated program ever completed");
    assert!(timeouts > 0, "no generated program ever aborted");
}

#[test]
fn full_searches_over_generated_programs_never_panic() {
    // A slice of the seed space through the complete driver: whatever the
    // search does — saturate, degrade, run out of budget — it must finish
    // and report a consistent outcome.
    for seed in 0..25u64 {
        let program = compile_seed(seed);
        let report = CoverMe::new(
            CoverMeConfig::default()
                .with_n_start(20)
                .with_n_iter(4)
                .with_seed(seed),
        )
        .run(&program);
        let percent = report.branch_coverage_percent();
        assert!(
            (0.0..=100.0).contains(&percent),
            "seed {seed}: impossible coverage {percent}% — {report}"
        );
        if report.aborted_evaluations() == 0 {
            assert_eq!(report.timeouts, 0, "seed {seed}");
            assert_eq!(report.traps, 0, "seed {seed}");
        }
    }
}
