//! Cross-crate integration tests: the full pipeline from program definition
//! (native or mini-language) through CoverMe and the baselines.

use coverme::{Campaign, CampaignConfig, CoverMe, CoverMeConfig, SaturationTracker};
use coverme_baselines::{RandomConfig, RandomTester};
use coverme_fdlibm::by_name;
use coverme_fpir::compile;
use coverme_runtime::{ExecCtx, Program};

#[test]
fn coverme_fully_covers_the_paper_example_via_the_mini_language() {
    let program = compile(
        r#"
        double square(double x) { return x * x; }
        double foo(double x) {
            if (x <= 1.0) { x = x + 2.5; }
            double y = square(x);
            if (y == 4.0) { return 1.0; }
            return 0.0;
        }
        "#,
        "foo",
    )
    .expect("compiles");
    let report =
        CoverMe::new(CoverMeConfig::default().with_n_start(60).with_seed(11)).run(&program);
    assert_eq!(report.branch_coverage_percent(), 100.0, "{report}");
}

#[test]
fn coverme_achieves_high_coverage_on_tanh_quickly() {
    let tanh = by_name("tanh").unwrap();
    let report = CoverMe::new(CoverMeConfig::default().with_n_start(80).with_seed(1)).run(&tanh);
    // The +-inf/NaN guard branches of tanh ask the optimizer to push the
    // input's high word past 0x7ff00000, which the scaled-down test budget
    // does not always manage; 60% is the floor insisted on here, the full
    // budget reaches the paper's 100%.
    assert!(
        report.branch_coverage_percent() >= 60.0,
        "only {:.1}%",
        report.branch_coverage_percent()
    );
}

#[test]
fn coverme_outperforms_random_on_an_equality_heavy_benchmark() {
    let b = by_name("remainder").unwrap();
    let coverme = CoverMe::new(CoverMeConfig::default().with_n_start(60).with_seed(5)).run(&b);
    let rand = RandomTester::new(RandomConfig {
        max_executions: 20_000,
        seed: 5,
        ..RandomConfig::default()
    })
    .run(&b);
    assert!(
        coverme.branch_coverage_percent() >= rand.branch_coverage_percent(),
        "CoverMe {:.1}% < Rand {:.1}%",
        coverme.branch_coverage_percent(),
        rand.branch_coverage_percent()
    );
}

#[test]
fn generated_inputs_replay_to_the_reported_coverage() {
    let b = by_name("asinh").unwrap();
    let report = CoverMe::new(CoverMeConfig::default().with_n_start(60).with_seed(9)).run(&b);
    let mut check = coverme_runtime::CoverageMap::new(b.sites);
    for input in &report.inputs {
        let mut ctx = ExecCtx::observe();
        b.execute(input, &mut ctx);
        check.record(&ctx);
    }
    assert_eq!(check.covered_count(), report.coverage.covered_count());
}

#[test]
fn static_descendants_from_the_mini_language_feed_saturation_tracking() {
    let program = compile(
        r#"
        double f(double x) {
            if (x > 0.0) {
                if (x > 10.0) { return 2.0; }
                return 1.0;
            }
            return 0.0;
        }
        "#,
        "f",
    )
    .unwrap();
    let mut tracker = SaturationTracker::with_static_descendants(
        Program::num_sites(&program),
        program.descendants(),
    );
    let mut ctx = ExecCtx::observe();
    program.execute(&[5.0], &mut ctx);
    tracker.record_trace(ctx.trace());
    // 0T is covered but its descendant 1T (x > 10) is not, so it must not be
    // saturated under the static relation.
    assert!(!tracker.is_saturated(coverme_runtime::BranchId::true_of(0)));
}

#[test]
fn parallel_campaign_over_fdlibm_matches_sequential_searches() {
    // A campaign over a slice of the suite must produce, per function, the
    // same search a standalone CoverMe run with the campaign-derived seed
    // produces — parallelism must not change results.
    let inventory: Vec<_> = ["tanh", "cbrt", "log10", "sin"]
        .iter()
        .map(|n| by_name(n).unwrap())
        .collect();
    let base = CoverMeConfig::default().with_n_start(40).with_seed(17);
    let report =
        Campaign::new(CampaignConfig::new().with_base(base).with_workers(2)).run(&inventory);

    assert_eq!(report.completed(), inventory.len());
    let names: Vec<&str> = report.results.iter().map(|r| r.name.as_str()).collect();
    // `by_name` accepts the short alias; the report carries the table name.
    assert_eq!(names, ["tanh", "cbrt", "ieee754_log10", "sin"]);

    // Re-running the campaign reproduces every generated input.
    let base = CoverMeConfig::default().with_n_start(40).with_seed(17);
    let again =
        Campaign::new(CampaignConfig::new().with_base(base).with_workers(4)).run(&inventory);
    for (a, b) in report.results.iter().zip(&again.results) {
        let (a, b) = (a.report.as_ref().unwrap(), b.report.as_ref().unwrap());
        assert_eq!(
            a.inputs, b.inputs,
            "{} diverged across worker counts",
            a.program
        );
        assert_eq!(a.coverage.covered_count(), b.coverage.covered_count());
    }

    // The aggregate is consistent with the per-function reports.
    assert!(report.suite_branch_coverage_percent() > 0.0);
    assert!(report.suite_branch_coverage_percent() <= 100.0);
}

#[test]
fn sharded_campaign_is_deterministic_and_loses_no_coverage() {
    // The two-level (functions × shards) schedule must behave like the
    // unsharded campaign, just spread over more work units: deterministic at
    // any worker count, and never covering fewer branches than shards = 1.
    let inventory: Vec<_> = ["tanh", "pow", "log10"]
        .iter()
        .map(|n| by_name(n).unwrap())
        .collect();
    // 64 starting points keep 16 per shard at 4 shards — the floor below
    // which `effective_shards` would clamp the split.
    let base = CoverMeConfig::default().with_n_start(64).with_seed(17);

    let unsharded = Campaign::new(
        CampaignConfig::new()
            .with_base(base.clone())
            .with_workers(2),
    )
    .run(&inventory);
    let sharded = Campaign::new(
        CampaignConfig::new()
            .with_base(base.clone())
            .with_shards(4)
            .with_workers(2),
    )
    .run(&inventory);
    let again = Campaign::new(
        CampaignConfig::new()
            .with_base(base)
            .with_shards(4)
            .with_workers(5),
    )
    .run(&inventory);

    for ((a, b), c) in unsharded
        .results
        .iter()
        .zip(&sharded.results)
        .zip(&again.results)
    {
        let a = a.report.as_ref().unwrap();
        let b = b.report.as_ref().unwrap();
        let c = c.report.as_ref().unwrap();
        assert!(
            b.coverage.covered_count() >= a.coverage.covered_count(),
            "{}: sharding lost coverage ({} < {})",
            a.program,
            b.coverage.covered_count(),
            a.coverage.covered_count()
        );
        assert_eq!(
            b.inputs, c.inputs,
            "{} diverged across worker counts",
            b.program
        );
        assert_eq!(b.coverage.covered_count(), c.coverage.covered_count());
    }
    assert_eq!(sharded.shards, 4);
    assert!(sharded.results.iter().all(|r| r.shards_run == 4));

    // The merged inputs replay to the merged coverage, sharded or not.
    for result in &sharded.results {
        let report = result.report.as_ref().unwrap();
        let program = by_name(&result.name).unwrap();
        let mut check = coverme_runtime::CoverageMap::new(Program::num_sites(&program));
        for input in &report.inputs {
            let mut ctx = ExecCtx::observe();
            program.execute(input, &mut ctx);
            check.record(&ctx);
        }
        assert_eq!(check.covered_count(), report.coverage.covered_count());
    }
}

#[test]
fn the_whole_fdlibm_suite_is_executable_under_every_tester_interface() {
    for b in coverme_fdlibm::all() {
        let input = vec![0.5; b.arity];
        let mut ctx = ExecCtx::observe();
        b.execute(&input, &mut ctx);
        assert!(ctx.trace().len() <= 10_000, "{} trace too long", b.name);
    }
}
