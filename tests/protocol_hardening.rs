//! Hostile-input hardening for the `coverme serve` wire protocol — the
//! server-side mirror of `crates/fpir/tests/frontend_hardening.rs`.
//!
//! The daemon's contract under attack (pinned here, documented in
//! `src/serve.rs`): malformed frames get a *positioned* `error` event and
//! the connection survives; an oversized or truncated frame gets an
//! `error` and a clean close; a client disconnecting mid-campaign cancels
//! its job and returns its worker slots; and `shutdown` drains every
//! handler before `serve` returns. Never a panic, never a leaked worker —
//! every test ends with a clean shutdown join, which would hang (and fail
//! the suite) if a job ticket leaked pool slots.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use coverme_repro::coverme::CoverMeConfig;
use coverme_repro::optim::rng::SplitMix64;
use coverme_repro::serve::{serve, submit_job, ServeOptions, MAX_FRAME};

/// Starts a daemon with `options` on an ephemeral port; returns its
/// address and the join handle of the serving thread.
fn start_server(options: ServeOptions) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || serve(listener, options));
    (addr, handle)
}

fn shutdown_and_join(addr: &str, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    submit_job(addr, "{\"op\": \"shutdown\"}", |_| {})
        .expect("shutdown submits")
        .expect("shutdown acknowledged");
    handle.join().expect("server thread").expect("serve result");
}

/// Connects and consumes the `hello` event, returning split halves.
fn connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let hello = read_line(&mut reader);
    assert!(hello.contains("\"event\":\"hello\""), "got: {hello}");
    (reader, writer)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read event line");
    line
}

/// A small-footprint daemon configuration so campaign-carrying tests run
/// in milliseconds.
fn tiny_options() -> ServeOptions {
    ServeOptions {
        max_jobs: 2,
        workers: 2,
        base: CoverMeConfig::new().with_n_start(6).with_seed(9),
        ..ServeOptions::default()
    }
}

#[test]
fn malformed_frames_get_positioned_errors_and_the_connection_survives() {
    let (addr, handle) = start_server(tiny_options());
    let (mut reader, mut writer) = connect(&addr);

    // A parse error deep in the frame: the error must carry the position.
    writer
        .write_all(b"{\"op\": \"ping\", \"x\": nope}\n")
        .expect("write");
    let error = read_line(&mut reader);
    assert!(error.contains("\"event\":\"error\""), "got: {error}");
    assert!(error.contains("\"line\":1"), "got: {error}");
    assert!(error.contains("\"column\":22"), "got: {error}");

    // Random hostile bytes (newline-free so each burst is one frame):
    // every one is answered, none kills the session.
    let mut rng = SplitMix64::new(0xBADF00D);
    for _ in 0..32 {
        let len = (rng.next_u64() % 64 + 1) as usize;
        let mut frame: Vec<u8> = (0..len).map(|_| (rng.next_u64() % 256) as u8).collect();
        for byte in &mut frame {
            if *byte == b'\n' {
                *byte = b'?';
            }
        }
        frame.push(b'\n');
        writer.write_all(&frame).expect("write hostile frame");
        let reply = read_line(&mut reader);
        assert!(
            reply.contains("\"event\":\"error\"") || reply.contains("\"event\":"),
            "unanswered hostile frame: {reply}"
        );
    }

    // The session still works.
    writer
        .write_all(b"{\"op\": \"ping\"}\n")
        .expect("write ping");
    let pong = read_line(&mut reader);
    assert!(pong.contains("\"event\":\"pong\""), "got: {pong}");

    // Structurally valid JSON with protocol violations: answered too.
    writer.write_all(b"{\"no\": \"op\"}\n").expect("write");
    assert!(read_line(&mut reader).contains("request has no string `op`"));
    writer.write_all(b"{\"op\": \"warp\"}\n").expect("write");
    assert!(read_line(&mut reader).contains("unknown op `warp`"));

    drop(writer);
    drop(reader);
    shutdown_and_join(&addr, handle);
}

#[test]
fn oversized_frames_error_and_close() {
    let (addr, handle) = start_server(tiny_options());
    let (mut reader, mut writer) = connect(&addr);
    let huge = vec![b'{'; MAX_FRAME + 2];
    writer.write_all(&huge).expect("write oversized");
    writer.write_all(b"\n").expect("terminate");
    let error = read_line(&mut reader);
    assert!(error.contains("\"event\":\"error\""), "got: {error}");
    assert!(error.contains("oversized frame"), "got: {error}");
    // The daemon closes after an oversized frame: EOF, not a hang.
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drained to EOF");
    assert!(rest.is_empty(), "unexpected trailing data: {rest}");
    shutdown_and_join(&addr, handle);
}

#[test]
fn truncated_final_frames_error_and_close() {
    let (addr, handle) = start_server(tiny_options());
    let (mut reader, writer) = connect(&addr);
    let mut writer = writer;
    writer
        .write_all(b"{\"op\": \"ping\"")
        .expect("write partial frame");
    // Half-close the write direction: the daemon sees bytes with no
    // newline followed by EOF — a truncated frame, not a clean close.
    writer
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let error = read_line(&mut reader);
    assert!(error.contains("truncated frame"), "got: {error}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drained to EOF");
    assert!(rest.is_empty());
    shutdown_and_join(&addr, handle);
}

#[test]
fn mid_campaign_disconnect_tears_down_cleanly_and_frees_workers() {
    let (addr, handle) = start_server(tiny_options());

    // Submit a campaign and vanish right after admission: the daemon must
    // cancel the job, finalize its searches, and return the pool slots.
    {
        let (mut reader, mut writer) = connect(&addr);
        writer
            .write_all(
                b"{\"op\": \"campaign\", \"suite\": \"fdlibm\", \
                  \"functions\": [\"tanh\", \"cos\", \"sin\", \"exp\"]}\n",
            )
            .expect("write campaign");
        let accepted = read_line(&mut reader);
        assert!(
            accepted.contains("\"event\":\"accepted\""),
            "got: {accepted}"
        );
        // Drop both halves mid-stream — no `done`, no clean close.
    }

    // The daemon survives and still has every worker: with a 2-slot pool,
    // a leaked ticket would make this admission block forever (the test
    // harness timeout would catch it). The ping also proves the acceptor
    // thread outlived the disconnect.
    submit_job(&addr, "{\"op\": \"ping\"}", |_| {})
        .expect("ping submits")
        .expect("pong");
    let mut events = Vec::new();
    let report = submit_job(
        &addr,
        "{\"op\": \"campaign\", \"suite\": \"fdlibm\", \"functions\": [\"tanh\"]}",
        |event| events.push(event.to_compact()),
    )
    .expect("campaign submits")
    .expect("campaign accepted")
    .expect("report arrived");
    assert!(report.contains("\"completed\":1"), "got: {report}");
    assert!(
        events.iter().any(|e| e.contains("\"event\":\"accepted\"")),
        "events: {events:?}"
    );
    shutdown_and_join(&addr, handle);
}

#[test]
fn admission_rejects_over_capacity_and_shutdown_rejects_everything() {
    let mut options = tiny_options();
    options.max_jobs = 0; // every campaign is over capacity
    let (addr, handle) = start_server(options);
    let rejected = submit_job(
        &addr,
        "{\"op\": \"campaign\", \"suite\": \"fdlibm\", \"functions\": [\"tanh\"]}",
        |_| {},
    )
    .expect("submits");
    let reason = rejected.expect_err("admission must reject at capacity");
    assert!(reason.contains("at capacity"), "got: {reason}");
    shutdown_and_join(&addr, handle);
}
